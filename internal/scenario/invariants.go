package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/simstore"
	"repro/internal/sweep"
)

// Invariants checks the cross-cutting stat sanity bounds every run must
// satisfy, regardless of workload: counter conservation (hits + misses ==
// accesses at both cache levels), derived-rate consistency (IPC and miss
// rates recompute exactly from their counters), per-slice and per-app
// decompositions summing to their totals, and the cycle accounting of the
// adaptive controller. It returns one message per violated invariant.
//
// These are the properties the scenario runner applies to every result and
// the fuzzer applies to every generated workload; anything stronger (mode A
// beats mode B, monotonicity across a ladder) belongs in a scenario's own
// Check hook.
func Invariants(spec sweep.RunSpec, s gpu.RunStats) []string {
	var v []string
	fail := func(format string, args ...any) {
		v = append(v, fmt.Sprintf(format, args...))
	}

	if s.Cycles != spec.MeasureCycles {
		fail("Cycles = %d, want the requested MeasureCycles %d", s.Cycles, spec.MeasureCycles)
	}
	if s.Cycles > 0 {
		if want := float64(s.Instructions) / float64(s.Cycles); s.IPC != want {
			fail("IPC = %v, want Instructions/Cycles = %v", s.IPC, want)
		}
	}

	// SM-side conservation.
	if s.SM.Loads+s.SM.Stores != s.SM.MemInstructions {
		fail("SM.Loads (%d) + SM.Stores (%d) != SM.MemInstructions (%d)",
			s.SM.Loads, s.SM.Stores, s.SM.MemInstructions)
	}
	if s.SM.L1Hits+s.SM.L1Misses != s.SM.Loads {
		fail("SM.L1Hits (%d) + SM.L1Misses (%d) != SM.Loads (%d)",
			s.SM.L1Hits, s.SM.L1Misses, s.SM.Loads)
	}
	if s.SM.MemInstructions > s.SM.Instructions {
		fail("SM.MemInstructions (%d) > SM.Instructions (%d)", s.SM.MemInstructions, s.SM.Instructions)
	}
	if s.SM.Instructions != s.Instructions {
		fail("SM.Instructions (%d) != Instructions (%d)", s.SM.Instructions, s.Instructions)
	}
	if want := s.SM.L1MissRate(); s.L1MissRate != want {
		fail("L1MissRate = %v, want recomputed %v", s.L1MissRate, want)
	}

	// LLC-side conservation. Merged misses are counted as hits (GPGPU-Sim's
	// "hit reserved"), so hits + misses covers every access exactly.
	if s.LLC.Hits+s.LLC.Misses != s.LLC.Accesses {
		fail("LLC.Hits (%d) + LLC.Misses (%d) != LLC.Accesses (%d)",
			s.LLC.Hits, s.LLC.Misses, s.LLC.Accesses)
	}
	if s.LLC.Reads+s.LLC.Writes != s.LLC.Accesses {
		fail("LLC.Reads (%d) + LLC.Writes (%d) != LLC.Accesses (%d)",
			s.LLC.Reads, s.LLC.Writes, s.LLC.Accesses)
	}
	if s.LLC.MergedMisses > s.LLC.Hits {
		fail("LLC.MergedMisses (%d) > LLC.Hits (%d)", s.LLC.MergedMisses, s.LLC.Hits)
	}
	if want := s.LLC.MissRate(); s.LLCMissRate != want {
		fail("LLCMissRate = %v, want recomputed %v", s.LLCMissRate, want)
	}
	var perSlice uint64
	for _, a := range s.LLCPerSliceAccesses {
		perSlice += a
	}
	if perSlice != s.LLC.Accesses {
		fail("sum of LLCPerSliceAccesses (%d) != LLC.Accesses (%d)", perSlice, s.LLC.Accesses)
	}

	// Per-application decomposition.
	var perApp uint64
	for _, a := range s.AppInstructions {
		perApp += a
	}
	if perApp != s.Instructions {
		fail("sum of AppInstructions (%d) != Instructions (%d)", perApp, s.Instructions)
	}

	// Adaptive-controller cycle accounting: every measured cycle is spent in
	// exactly one LLC organization.
	var modeSum uint64
	for _, c := range s.ModeCycles {
		modeSum += c
	}
	if modeSum != s.Cycles {
		fail("sum of ModeCycles (%d) != Cycles (%d)", modeSum, s.Cycles)
	}
	if s.GatedCycles > s.Cycles {
		fail("GatedCycles (%d) > Cycles (%d)", s.GatedCycles, s.Cycles)
	}
	if s.Cycles > 0 {
		if want := float64(s.GatedCycles) / float64(s.Cycles); s.GatedFraction != want {
			fail("GatedFraction = %v, want recomputed %v", s.GatedFraction, want)
		}
	}
	return v
}

// StatsJSON returns the canonical JSON encoding of a result's statistics —
// the byte string under which "byte-identical across two invocations" is
// judged (encoding/json sorts map keys, so the encoding is deterministic).
func StatsJSON(s gpu.RunStats) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// RunStats is a plain data struct; failure to encode it is a
		// programming error, not a run outcome.
		panic(fmt.Sprintf("scenario: encode RunStats: %v", err))
	}
	return b
}

// fingerprintViolations checks simstore fingerprint stability for one spec:
// two computations agree, and the fingerprint ignores run naming (Key), as
// the content-addressed store depends on.
func fingerprintViolations(spec sweep.RunSpec) []string {
	fp1, err := simstore.Fingerprint(spec)
	if err != nil {
		return []string{fmt.Sprintf("run %q: fingerprint failed: %v", spec.Key, err)}
	}
	fp2, err := simstore.Fingerprint(spec)
	if err != nil {
		return []string{fmt.Sprintf("run %q: repeated fingerprint failed: %v", spec.Key, err)}
	}
	var v []string
	if fp1 != fp2 {
		v = append(v, fmt.Sprintf("run %q: fingerprint not stable across two computations", spec.Key))
	}
	renamed := spec
	renamed.Key = spec.Key + "-renamed"
	fp3, err := simstore.Fingerprint(renamed)
	if err != nil {
		return append(v, fmt.Sprintf("run %q: renamed fingerprint failed: %v", spec.Key, err))
	}
	if fp1 != fp3 {
		v = append(v, fmt.Sprintf("run %q: fingerprint depends on the run Key", spec.Key))
	}
	return v
}

// statsEqual reports whether two results carry byte-identical statistics.
func statsEqual(a, b gpu.RunStats) bool {
	return bytes.Equal(StatsJSON(a), StatsJSON(b))
}
