package scenario

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite the README scenario matrix")

// TestCatalogDeclares checks the catalog-entry contract over every recipe:
// valid, uniquely and consistently named, sized to the acceptance floor, and
// mapped only to figures that exist in the exp registry.
func TestCatalogDeclares(t *testing.T) {
	cat := Catalog()
	if len(cat) < 10 {
		t.Fatalf("catalog has %d scenarios, want >= 10", len(cat))
	}
	seen := map[string]bool{}
	for _, sc := range cat {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if want := fmt.Sprintf("l%d-", int(sc.Level)); !strings.HasPrefix(sc.Name, want) {
			t.Errorf("%s: name not prefixed with its level (%s)", sc.Name, want)
		}
		if sc.Level > Level3 {
			t.Errorf("%s: catalog entries stay within levels 1-3; higher levels rescale via RunOptions", sc.Name)
		}
		for _, key := range sc.Figures {
			if _, ok := exp.FigureByKey(key); !ok {
				t.Errorf("%s: figure key %q not in the exp registry", sc.Name, key)
			}
		}
	}
}

// TestCatalogCoversAllAxes checks each workload axis has at least one recipe.
func TestCatalogCoversAllAxes(t *testing.T) {
	for _, axis := range Axes() {
		found := false
		for _, sc := range Catalog() {
			if sc.HasAxis(axis) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no scenario exercises axis %q", axis)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for l := Level1; l <= Level5; l++ {
		if got, ok := ParseLevel(l.String()); !ok || got != l {
			t.Errorf("ParseLevel(%q) = %v, %v", l.String(), got, ok)
		}
		if got, ok := ParseLevel(fmt.Sprintf("%d", int(l))); !ok || got != l {
			t.Errorf("ParseLevel(%d) = %v, %v", int(l), got, ok)
		}
	}
	if _, ok := ParseLevel("level6"); ok {
		t.Error("ParseLevel accepted level6")
	}
	if _, ok := ParseLevel(""); ok {
		t.Error("ParseLevel accepted the empty string")
	}
}

// TestLevelScalesGrow checks run length strictly grows with level — the
// property that makes levels a cost ordering.
func TestLevelScalesGrow(t *testing.T) {
	for l := Level2; l <= Level5; l++ {
		lo, hi := (l - 1).Scale(), l.Scale()
		if hi.MeasureCycles <= lo.MeasureCycles {
			t.Errorf("%s measure cycles (%d) not above %s (%d)",
				l, hi.MeasureCycles, l-1, lo.MeasureCycles)
		}
	}
}

func TestCatalogLookups(t *testing.T) {
	sc, ok := ByName("l1-trace-roundtrip")
	if !ok || sc.Name != "l1-trace-roundtrip" {
		t.Fatalf("ByName(l1-trace-roundtrip) = %v, %v", sc.Name, ok)
	}
	if _, ok := ByName("no-such"); ok {
		t.Error("ByName accepted an unknown name")
	}
	for _, sc := range ByLevel(Level1) {
		if sc.Level != Level1 {
			t.Errorf("ByLevel(1) returned %s (%s)", sc.Name, sc.Level)
		}
	}
	if n1, n12 := len(ByLevel(Level1))+len(ByLevel(Level2)), len(UpToLevel(Level2)); n1 != n12 {
		t.Errorf("UpToLevel(2) has %d entries, want %d", n12, n1)
	}
	if len(UpToLevel(Level5)) != len(Catalog()) {
		t.Error("UpToLevel(5) must return the whole catalog")
	}
}

// runCatalogLevel executes every recipe of one level with the determinism
// gate on, failing the test on any invariant violation.
func runCatalogLevel(t *testing.T, level Level) {
	t.Helper()
	for _, sc := range ByLevel(level) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := sc.Run(context.Background(), RunOptions{
				Dir:             t.TempDir(),
				DeterminismGate: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("invariant violations:\n%s", rep.Format())
			}
			if rep.Runs == 0 || !rep.DeterminismChecked {
				t.Fatalf("report incomplete: %+v", rep)
			}
		})
	}
}

// TestRunLevel1Catalog is the CI smoke gate: every level-1 recipe runs
// un-skipped, determinism-checked, with zero violations.
func TestRunLevel1Catalog(t *testing.T) { runCatalogLevel(t, Level1) }

func TestRunLevel2Catalog(t *testing.T) {
	if testing.Short() {
		t.Skip("level-2 scenarios skipped in -short mode")
	}
	runCatalogLevel(t, Level2)
}

func TestRunLevel3Catalog(t *testing.T) {
	if testing.Short() {
		t.Skip("level-3 scenarios skipped in -short mode")
	}
	runCatalogLevel(t, Level3)
}

// TestRunRejectsDuplicateKeys checks the runner refuses a recipe whose specs
// collide, since positional result checking depends on distinct keys.
func TestRunRejectsDuplicateKeys(t *testing.T) {
	sc := Scenario{
		Name: "l1-dup", Description: "duplicate keys", Level: Level1,
		Axes: []Axis{AxisSharing},
		Specs: func(e *Env) []sweep.RunSpec {
			s := catalogSpec("same", SmokeConfig(0), e.Scale, mustByAbbr("VA"))
			return []sweep.RunSpec{s, s}
		},
	}
	if _, err := sc.Run(context.Background(), RunOptions{Dir: t.TempDir()}); err == nil {
		t.Fatal("duplicate run keys must be rejected")
	}
}

// TestReportFormat spot-checks the text form paperfigs prints.
func TestReportFormat(t *testing.T) {
	rep := Report{Name: "l1-x", Level: Level1, Runs: 2, DeterminismChecked: true}
	out := rep.Format()
	if !strings.Contains(out, "l1-x") || !strings.Contains(out, "ok") ||
		!strings.Contains(out, "determinism-checked") {
		t.Errorf("Format() = %q", out)
	}
	rep.Violations = []string{"boom"}
	if out := rep.Format(); !strings.Contains(out, "FAIL") || !strings.Contains(out, "boom") {
		t.Errorf("failing Format() = %q", out)
	}
}

const (
	matrixBegin = "<!-- scenario-matrix:begin -->"
	matrixEnd   = "<!-- scenario-matrix:end -->"
)

// TestREADMEMatrixCurrent keeps the README's scenario × figure support matrix
// identical to the generated one; -update rewrites it in place.
func TestREADMEMatrixCurrent(t *testing.T) {
	const readme = "../../README.md"
	data, err := os.ReadFile(readme)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	begin := strings.Index(text, matrixBegin)
	end := strings.Index(text, matrixEnd)
	if begin < 0 || end < 0 || end < begin {
		t.Fatalf("README lacks the %s / %s markers", matrixBegin, matrixEnd)
	}
	want := "\n" + Matrix()
	got := text[begin+len(matrixBegin) : end]
	if got == want {
		return
	}
	if !*update {
		t.Fatalf("README scenario matrix is stale; run `go test ./internal/scenario -run TestREADMEMatrixCurrent -update`")
	}
	text = text[:begin+len(matrixBegin)] + want + text[end:]
	if err := os.WriteFile(readme, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMatrixShape checks every scenario and every registry figure appears in
// the generated matrix.
func TestMatrixShape(t *testing.T) {
	m := Matrix()
	for _, sc := range Catalog() {
		if !strings.Contains(m, "`"+sc.Name+"`") {
			t.Errorf("matrix lacks scenario %s", sc.Name)
		}
	}
	for _, f := range exp.Figures() {
		if !strings.Contains(m, " "+f.Key+" |") {
			t.Errorf("matrix lacks figure column %s", f.Key)
		}
	}
}
