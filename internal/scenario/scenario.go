// Package scenario is the named, versioned catalog of workload recipes the
// simulator's correctness story is gated on.
//
// The determinism guarantees built up by the earlier subsystems — golden
// traces, serial-vs-parallel byte-identical sweeps, content-addressed result
// caching — are only as strong as the workload space they are exercised on.
// This package makes that space an enumerable artifact: every entry of
// Catalog() is a named recipe that declares
//
//   - a Level (level1 smoke for CI -short budgets through level5 exhaustive
//     sweeps, organized like RVS's levels/rvs_level_N test recipes),
//   - the workload Axes it exercises (sharing, locality, divergence,
//     multi-program, trace-replay),
//   - the paper figures whose workload space it covers (exp registry keys,
//     rendered into the README's scenario × figure support matrix), and
//   - the runs to execute plus the invariants their statistics must satisfy.
//
// Running a scenario (Scenario.Run) executes its declared sweep.RunSpec batch
// on any sweep.Executor — the local worker pool, or a simd daemon's
// store-backed engine — then checks every result against the cross-cutting
// stat invariants (Invariants), the scenario's own Check hook, fingerprint
// stability under internal/simstore, and (optionally, the determinism gate) a
// full second execution that must be byte-identical to the first.
//
// The same invariants back FuzzScenario (fuzz.go): a property-based fuzzer
// that decodes arbitrary bytes into random workload.Spec / RunSpec
// combinations — including multi-program and trace record→replay mixes — and
// requires every one of them to simulate deterministically and sanely.
package scenario

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/sweep"
)

// Level grades a scenario by cost and coverage, mirroring RVS's five-level
// test recipes: level1 runs on every CI push (seconds, -short safe), level2/3
// in the full test suite (tens of seconds), level4 at figure scale, level5 as
// an exhaustive sweep that only makes sense on a cluster.
type Level int

const (
	Level1 Level = 1 + iota
	Level2
	Level3
	Level4
	Level5
)

func (l Level) String() string { return fmt.Sprintf("level%d", int(l)) }

// ParseLevel parses "level1".."level5" (and bare "1".."5").
func ParseLevel(s string) (Level, bool) {
	for l := Level1; l <= Level5; l++ {
		if s == l.String() || s == fmt.Sprintf("%d", int(l)) {
			return l, true
		}
	}
	return 0, false
}

// Scale is the per-level run length. Scenarios read it from their Env so one
// recipe can be stretched (e.g. by paperfigs -cycles) without editing the
// catalog.
type Scale struct {
	MeasureCycles uint64
	WarmupCycles  uint64
	Seed          int64
}

// Scale returns the default run length for scenarios of this level.
func (l Level) Scale() Scale {
	switch l {
	case Level1:
		return Scale{MeasureCycles: 2_000, WarmupCycles: 500, Seed: 1}
	case Level2:
		return Scale{MeasureCycles: 6_000, WarmupCycles: 1_500, Seed: 1}
	case Level3:
		return Scale{MeasureCycles: 20_000, WarmupCycles: 5_000, Seed: 1}
	case Level4:
		return Scale{MeasureCycles: 60_000, WarmupCycles: 20_000, Seed: 1}
	default:
		return Scale{MeasureCycles: 200_000, WarmupCycles: 40_000, Seed: 1}
	}
}

// Axis names one dimension of the workload space a scenario exercises. Every
// axis has at least one catalog entry (TestCatalogCoversAllAxes enforces it).
type Axis string

const (
	AxisSharing      Axis = "sharing"
	AxisLocality     Axis = "locality"
	AxisDivergence   Axis = "divergence"
	AxisMultiProgram Axis = "multi-program"
	AxisTraceReplay  Axis = "trace-replay"
)

// Axes lists every axis, in matrix/report order.
func Axes() []Axis {
	return []Axis{AxisSharing, AxisLocality, AxisDivergence, AxisMultiProgram, AxisTraceReplay}
}

// Env is the execution context handed to a scenario's Prepare/Specs/Check
// hooks: the run scale plus a scratch directory for traces recorded during
// Prepare (trace-replay scenarios), with the statistics of those recording
// runs kept for the replay-equals-record comparison.
type Env struct {
	Scale Scale
	// Dir is the scratch directory for recorded traces.
	Dir string
	// Recorded holds the statistics of every run recorded via Record, keyed
	// by the trace name.
	Recorded map[string]gpu.RunStats
}

// TracePath returns the scratch path of a named trace.
func (e *Env) TracePath(name string) string {
	return filepath.Join(e.Dir, name+".trace")
}

// Record executes spec while capturing its op stream to TracePath(name) and
// remembers the resulting statistics in Recorded for later comparison.
func (e *Env) Record(name string, spec sweep.RunSpec) error {
	spec.RecordPath = e.TracePath(name)
	stats, err := sweep.Execute(spec)
	if err != nil {
		return fmt.Errorf("scenario: record %q: %w", name, err)
	}
	if e.Recorded == nil {
		e.Recorded = make(map[string]gpu.RunStats)
	}
	e.Recorded[name] = stats
	return nil
}

// Scenario is one named workload recipe of the catalog.
type Scenario struct {
	// Name is the catalog key ("l1-trace-roundtrip"); unique, kebab-case,
	// prefixed with its level.
	Name string
	// Description is the one-line purpose shown by -list-scenarios.
	Description string
	Level       Level
	// Axes names the workload-space dimensions the recipe exercises.
	Axes []Axis
	// Figures lists the exp registry keys (e.g. "2", "15", "tables") whose
	// workload space this scenario covers; it feeds the README support
	// matrix. Correctness-only recipes may cover none.
	Figures []string
	// Prepare optionally records traces (or other scratch assets) into the
	// Env before the batch is declared. It runs serially, before Specs.
	Prepare func(*Env) error
	// Specs declares the scenario's runs. Keys must be unique.
	Specs func(*Env) []sweep.RunSpec
	// Check optionally verifies scenario-specific invariants over the
	// results (indexed like the specs) and returns violation messages.
	Check func(*Env, []sweep.Result) []string
}

// HasAxis reports whether the scenario declares the given axis.
func (s Scenario) HasAxis(a Axis) bool {
	for _, x := range s.Axes {
		if x == a {
			return true
		}
	}
	return false
}

// Validate checks the catalog-entry contract (naming, level, axes, hooks).
func (s Scenario) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("scenario: missing name")
	case s.Level < Level1 || s.Level > Level5:
		return fmt.Errorf("scenario %s: level %d out of range", s.Name, s.Level)
	case len(s.Axes) == 0:
		return fmt.Errorf("scenario %s: no axes declared", s.Name)
	case s.Specs == nil:
		return fmt.Errorf("scenario %s: no Specs hook", s.Name)
	case s.Description == "":
		return fmt.Errorf("scenario %s: missing description", s.Name)
	}
	known := map[Axis]bool{}
	for _, a := range Axes() {
		known[a] = true
	}
	for _, a := range s.Axes {
		if !known[a] {
			return fmt.Errorf("scenario %s: unknown axis %q", s.Name, a)
		}
	}
	return nil
}

// SmokeConfig is the scaled-down GPU used by level-1/2/3 recipes: the
// baseline architecture shrunk to 4 SMs in 2 clusters so a full catalog run
// takes seconds, while still exercising every component (both NoC stages,
// multiple LLC slices per MC, the adaptive controller's ATD sampling).
func SmokeConfig(mode config.LLCMode) config.Config {
	cfg := config.Baseline()
	cfg.NumSMs = 4
	cfg.NumClusters = 2
	cfg.MaxWarpsPerSM = 8
	cfg.MaxCTAsPerSM = 4
	cfg.SchedulersPerSM = 1
	cfg.NumMemControllers = 2
	cfg.LLCSlicesPerMC = 2
	cfg.LLCSliceBytes = 16 * 1024
	cfg.L1SizeBytes = 12 * 1024
	cfg.L1MSHRs = 8
	cfg.LLCMSHRsPerSlice = 8
	cfg.ProfileWindowCycles = 500
	cfg.LLCMode = mode
	return cfg
}

// scratchDir resolves the scratch directory for one scenario run: the given
// base (or the OS temp dir) plus a per-call unique subdirectory. The caller
// removes it.
func scratchDir(base, name string) (string, error) {
	if base == "" {
		base = os.TempDir()
	}
	return os.MkdirTemp(base, "scenario-"+name+"-*")
}
