package scenario

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/sweep"
)

// RunOptions controls one scenario execution.
type RunOptions struct {
	// Exec executes the declared batch; nil uses a local worker pool of
	// Workers goroutines (sweep.Runner semantics: 0 = GOMAXPROCS serialized
	// to 1 worker here for the smallest default footprint).
	Exec sweep.Executor
	// Workers sizes the default local pool when Exec is nil; 0 means serial.
	Workers int
	// Shards partitions each run's SMs and LLC slices across worker
	// goroutines (config.Config.Shards). Statistics — and therefore every
	// invariant and the determinism gate — are byte-identical to the serial
	// loop; only wall-clock time changes. 0 keeps the scenario's own
	// configuration.
	Shards int
	// Scale overrides the level-derived run length when non-nil.
	Scale *Scale
	// Dir is the base directory for scratch traces (defaults to the OS temp
	// directory); each run gets its own subdirectory, removed afterwards.
	Dir string
	// DeterminismGate, when set, executes the whole batch a second time and
	// requires byte-identical statistics — the catalog's determinism
	// acceptance gate. With a store-backed executor the second pass is
	// answered from cache, so the gate is only meaningful on a computing
	// executor.
	DeterminismGate bool
	// Progress, when non-nil, receives per-run completion events from the
	// default local executor (ignored when Exec is set).
	Progress func(sweep.Progress)
}

// Report is the outcome of one scenario run.
type Report struct {
	Name  string
	Level Level
	// Runs is the number of declared specs (the determinism gate re-executes
	// them but does not add to this count).
	Runs int
	// DeterminismChecked records whether the second, byte-identity pass ran.
	DeterminismChecked bool
	// Violations lists every failed invariant; empty means the scenario
	// passed.
	Violations []string
	Elapsed    time.Duration
}

// OK reports whether the scenario passed all invariants.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// Format renders the report as the one-block text form paperfigs prints.
func (r Report) Format() string {
	var b strings.Builder
	status := "ok"
	if !r.OK() {
		status = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	gate := ""
	if r.DeterminismChecked {
		gate = ", determinism-checked"
	}
	fmt.Fprintf(&b, "%-28s %s  %d runs%s  %.1fs  %s\n",
		r.Name, r.Level, r.Runs, gate, r.Elapsed.Seconds(), status)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "    - %s\n", v)
	}
	return b.String()
}

// Run executes the scenario: Prepare, declare the batch, execute it, check
// the generic stat invariants plus the scenario's own Check hook and
// fingerprint stability, and — under the determinism gate — execute the batch
// again and require byte-identical statistics.
//
// The returned error reports infrastructure failure (a run that could not
// execute); invariant violations are data, reported in the Report.
func (sc Scenario) Run(ctx context.Context, opts RunOptions) (Report, error) {
	start := time.Now()
	rep := Report{Name: sc.Name, Level: sc.Level}
	if err := sc.Validate(); err != nil {
		return rep, err
	}

	scale := sc.Level.Scale()
	if opts.Scale != nil {
		scale = *opts.Scale
	}
	dir, err := scratchDir(opts.Dir, sc.Name)
	if err != nil {
		return rep, fmt.Errorf("scenario %s: scratch dir: %w", sc.Name, err)
	}
	defer os.RemoveAll(dir)
	env := &Env{Scale: scale, Dir: dir}

	if sc.Prepare != nil {
		if err := sc.Prepare(env); err != nil {
			return rep, fmt.Errorf("scenario %s: prepare: %w", sc.Name, err)
		}
	}
	specs := sc.Specs(env)
	if opts.Shards != 0 {
		for i := range specs {
			specs[i].Config.Shards = opts.Shards
		}
	}
	rep.Runs = len(specs)
	if len(specs) == 0 {
		return rep, fmt.Errorf("scenario %s: declares no runs", sc.Name)
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Key] {
			return rep, fmt.Errorf("scenario %s: duplicate run key %q", sc.Name, s.Key)
		}
		seen[s.Key] = true
	}

	exec := opts.Exec
	if exec == nil {
		workers := opts.Workers
		if workers <= 0 {
			workers = 1
		}
		exec = &sweep.Runner{Workers: workers, OnProgress: opts.Progress}
	}
	results, err := exec.Run(ctx, specs)
	if err != nil {
		return rep, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}

	for i, res := range results {
		for _, v := range Invariants(specs[i], res.Stats) {
			rep.Violations = append(rep.Violations, fmt.Sprintf("run %q: %s", res.Key, v))
		}
		rep.Violations = append(rep.Violations, fingerprintViolations(specs[i])...)
	}
	if sc.Check != nil {
		rep.Violations = append(rep.Violations, sc.Check(env, results)...)
	}

	if opts.DeterminismGate {
		rep.DeterminismChecked = true
		again, err := exec.Run(ctx, specs)
		if err != nil {
			return rep, fmt.Errorf("scenario %s: determinism re-run: %w", sc.Name, err)
		}
		for i := range results {
			if !statsEqual(results[i].Stats, again[i].Stats) {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"run %q: statistics differ between two identical invocations", results[i].Key))
			}
		}
	}

	rep.Elapsed = time.Since(start)
	return rep, nil
}

// ByName looks up a catalog entry.
func ByName(name string) (Scenario, bool) {
	for _, sc := range Catalog() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// ByLevel returns the catalog entries of one level, in catalog order.
func ByLevel(l Level) []Scenario {
	var out []Scenario
	for _, sc := range Catalog() {
		if sc.Level == l {
			out = append(out, sc)
		}
	}
	return out
}

// UpToLevel returns the catalog entries at or below the given level.
func UpToLevel(l Level) []Scenario {
	var out []Scenario
	for _, sc := range Catalog() {
		if sc.Level <= l {
			out = append(out, sc)
		}
	}
	return out
}
