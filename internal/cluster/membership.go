package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Membership is gossip-based (SWIM-lite): every member periodically
// push-pulls its full view with the others and with any configured seed
// nodes, so a daemon joins by contacting one live seed and the rest of the
// cluster learns of it within a heartbeat or two. Failure detection is
// suspicion-based — a member that stops answering is demoted alive →
// suspect → dead on local timers, and refutes a wrongful suspicion by
// bumping its incarnation. The ACTIVE set (alive + suspect) is what
// routing ranks over; every change to it bumps a local, monotonically
// increasing epoch so consumers (server routing, client pools) can detect
// membership churn cheaply. Epochs are per-node observations, not
// consensus: two members may pass through different epoch numbers while
// converging on the same set.

// GossipPath is the HTTP route members exchange views on.
const GossipPath = "/v1/cluster/gossip"

// Status is a member's liveness state as locally observed.
type Status string

const (
	StatusAlive   Status = "alive"
	StatusSuspect Status = "suspect"
	StatusDead    Status = "dead"
	StatusLeft    Status = "left"
)

// precedence orders statuses at equal incarnation: a stronger claim wins.
func precedence(s Status) int {
	switch s {
	case StatusLeft:
		return 3
	case StatusDead:
		return 2
	case StatusSuspect:
		return 1
	default:
		return 0
	}
}

// Member is one row of a gossiped view.
type Member struct {
	Addr        string `json:"addr"`
	Incarnation int64  `json:"incarnation"`
	Status      Status `json:"status"`
}

// View is the gossip wire format: the full membership table as the sender
// sees it. A gossip POST carries the sender's view; the response carries
// the receiver's, so one round-trip is a full push-pull exchange.
type View struct {
	From    string   `json:"from"`
	Epoch   uint64   `json:"epoch"`
	Members []Member `json:"members"`
}

// NodeConfig configures a gossip node. Exactly one of Seeds (dynamic
// membership) or Static (fixed -peers list, no gossip) should be set; both
// empty yields a single-member cluster that still accepts joins.
type NodeConfig struct {
	// Self is this daemon's advertised base URL.
	Self string
	// Seeds are bootstrap contact points (other daemons' base URLs). They
	// are gossip targets until absorbed into the view, and remain fallback
	// targets so an isolated node can rejoin after a partition.
	Seeds []string
	// Static pins membership to a fixed list (the legacy -peers mode):
	// no gossip rounds, no suspicion, epoch constant. Self must be listed.
	Static []string

	// HeartbeatEvery is the gossip period (default 1s). SuspectAfter and
	// DeadAfter are how long a member may stay silent before being demoted
	// (defaults 4x and 12x the heartbeat); TombstoneAfter is how long dead/
	// left entries are remembered so they cannot be resurrected by stale
	// gossip (default 60x the heartbeat).
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration
	DeadAfter      time.Duration
	TombstoneAfter time.Duration

	// OnChange, if set, fires after every active-set change with the new
	// epoch and sorted active member list. Called outside internal locks.
	OnChange func(epoch uint64, members []string)

	// HTTPClient overrides the gossip transport (tests).
	HTTPClient *http.Client
}

type memberState struct {
	Member
	lastOK time.Time // last successful contact either direction
	downAt time.Time // when the member went dead/left (tombstone clock)
}

// Node tracks cluster membership and exposes the rendezvous placement API
// over the current ACTIVE set. All methods are safe for concurrent use.
type Node struct {
	self    string
	static  bool
	seeds   []string
	hb      time.Duration
	suspect time.Duration
	dead    time.Duration
	tomb    time.Duration
	onChg   func(uint64, []string)
	httpc   *http.Client

	mu      sync.Mutex
	members map[string]*memberState
	epoch   uint64
	active  []string // cached sorted ACTIVE set, incl. self
	leaving bool
	started bool
	quit    chan struct{}
	wg      sync.WaitGroup
}

// NewNode builds a node; Start begins gossiping (a no-op in static mode).
func NewNode(cfg NodeConfig) (*Node, error) {
	self := Normalize(cfg.Self)
	if self == "" {
		return nil, errors.New("cluster: node needs a self address")
	}
	if len(cfg.Seeds) > 0 && len(cfg.Static) > 0 {
		return nil, errors.New("cluster: Seeds and Static are mutually exclusive")
	}
	hb := cfg.HeartbeatEvery
	if hb <= 0 {
		hb = time.Second
	}
	sus := cfg.SuspectAfter
	if sus <= 0 {
		sus = 4 * hb
	}
	dead := cfg.DeadAfter
	if dead <= 0 {
		dead = 12 * hb
	}
	tomb := cfg.TombstoneAfter
	if tomb <= 0 {
		tomb = 60 * hb
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 2 * hb}
	}
	n := &Node{
		self:    self,
		static:  len(cfg.Static) > 0,
		hb:      hb,
		suspect: sus,
		dead:    dead,
		tomb:    tomb,
		onChg:   cfg.OnChange,
		httpc:   httpc,
		members: make(map[string]*memberState),
		epoch:   1,
		quit:    make(chan struct{}),
	}
	now := time.Now()
	if n.static {
		found := false
		for _, p := range cfg.Static {
			p = Normalize(p)
			if p == "" {
				continue
			}
			if p == self {
				found = true
			}
			if _, ok := n.members[p]; !ok {
				n.members[p] = &memberState{Member: Member{Addr: p, Status: StatusAlive}, lastOK: now}
			}
		}
		if !found {
			return nil, fmt.Errorf("cluster: self %s is not in the static peer list", self)
		}
	} else {
		// Incarnation is the startup wall-clock so a restarted daemon's
		// fresh entry always beats its own stale pre-crash entry.
		n.members[self] = &memberState{
			Member: Member{Addr: self, Incarnation: now.UnixNano(), Status: StatusAlive},
			lastOK: now,
		}
		for _, s := range cfg.Seeds {
			s = Normalize(s)
			if s != "" && s != self {
				n.seeds = append(n.seeds, s)
			}
		}
	}
	n.active = n.activeLocked()
	return n, nil
}

// Static reports whether membership is pinned (legacy -peers mode).
func (n *Node) Static() bool { return n.static }

// Self returns this node's advertised address.
func (n *Node) Self() string { return n.self }

// Epoch returns the local membership epoch. It bumps exactly when the
// ACTIVE set changes.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Members returns the sorted ACTIVE member addresses (alive + suspect,
// self included). The slice is a copy.
func (n *Node) Members() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.active...)
}

// MemberEntries returns every tracked member (tombstones included),
// sorted by address.
func (n *Node) MemberEntries() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.members))
	for _, ms := range n.members {
		out = append(out, ms.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Len returns the ACTIVE member count.
func (n *Node) Len() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.active)
}

// Owner returns the rendezvous owner of fp among the ACTIVE members.
func (n *Node) Owner(fp [32]byte) string {
	if r := n.Ranked(fp); len(r) > 0 {
		return r[0]
	}
	return n.self
}

// IsOwner reports whether this node owns fp.
func (n *Node) IsOwner(fp [32]byte) bool { return n.Owner(fp) == n.self }

// Ranked returns the ACTIVE members ordered by rendezvous weight for fp
// (owner first) — the probe/replication/failover order.
func (n *Node) Ranked(fp [32]byte) []string { return Ranked(fp, n.Members()) }

// RankedKey ranks the ACTIVE members for an arbitrary string key.
func (n *Node) RankedKey(key string) []string { return RankedKey(key, n.Members()) }

// activeLocked recomputes the sorted ACTIVE set. Callers hold n.mu.
func (n *Node) activeLocked() []string {
	out := make([]string, 0, len(n.members))
	for addr, ms := range n.members {
		if ms.Status == StatusAlive || ms.Status == StatusSuspect {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

// refreshLocked compares the ACTIVE set against the cache, bumps the epoch
// on change, and returns a callback to fire once the lock is released (nil
// when nothing changed).
func (n *Node) refreshLocked() func() {
	act := n.activeLocked()
	if slicesEqual(act, n.active) {
		return nil
	}
	n.active = act
	n.epoch++
	if n.onChg == nil {
		return nil
	}
	epoch, snap, cb := n.epoch, append([]string(nil), act...), n.onChg
	return func() { cb(epoch, snap) }
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeLocked folds one gossiped row into the table. Higher incarnation
// wins; at equal incarnation the stronger status claim wins (left > dead >
// suspect > alive). A node that hears itself declared anything but alive
// refutes by bumping its incarnation past the claim.
func (n *Node) mergeLocked(rm Member, now time.Time) {
	rm.Addr = Normalize(rm.Addr)
	if rm.Addr == "" {
		return
	}
	if rm.Addr == n.self {
		if !n.leaving && (rm.Status != StatusAlive || rm.Incarnation > n.members[n.self].Incarnation) {
			ms := n.members[n.self]
			if rm.Incarnation >= ms.Incarnation {
				ms.Incarnation = rm.Incarnation + 1
			}
			ms.Status = StatusAlive
			ms.lastOK = now
		}
		return
	}
	ms, ok := n.members[rm.Addr]
	if !ok {
		n.members[rm.Addr] = &memberState{Member: rm, lastOK: now}
		return
	}
	if rm.Incarnation < ms.Incarnation {
		return
	}
	if rm.Incarnation == ms.Incarnation && precedence(rm.Status) <= precedence(ms.Status) {
		return
	}
	wasDown := ms.Status == StatusDead || ms.Status == StatusLeft
	ms.Member = rm
	if wasDown && (rm.Status == StatusAlive || rm.Status == StatusSuspect) {
		ms.lastOK = now // fresh grace period on resurrection
	}
	if rm.Status == StatusDead || rm.Status == StatusLeft {
		ms.downAt = now
	}
}

// sweepLocked runs the suspicion timers and prunes expired tombstones.
func (n *Node) sweepLocked(now time.Time) {
	for addr, ms := range n.members {
		if addr == n.self {
			continue
		}
		switch ms.Status {
		case StatusAlive:
			if now.Sub(ms.lastOK) > n.suspect {
				ms.Status = StatusSuspect
			}
		case StatusSuspect:
			if now.Sub(ms.lastOK) > n.dead {
				ms.Status = StatusDead
				ms.downAt = now
			}
		case StatusDead, StatusLeft:
			if now.Sub(ms.downAt) > n.tomb {
				delete(n.members, addr)
			}
		}
	}
}

// view snapshots the local table as a wire View.
func (n *Node) view() View {
	n.mu.Lock()
	defer n.mu.Unlock()
	v := View{From: n.self, Epoch: n.epoch}
	for _, ms := range n.members {
		v.Members = append(v.Members, ms.Member)
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].Addr < v.Members[j].Addr })
	return v
}

// absorb merges a remote view and fires OnChange if the ACTIVE set moved.
// direct marks views received straight from their sender (proof the sender
// is reachable, which clears a local suspicion without an incarnation
// round-trip).
func (n *Node) absorb(v View, direct bool) {
	if n.static {
		return
	}
	now := time.Now()
	n.mu.Lock()
	for _, m := range v.Members {
		n.mergeLocked(m, now)
	}
	if from := Normalize(v.From); direct && from != "" && from != n.self {
		if ms, ok := n.members[from]; ok && ms.Status != StatusLeft {
			ms.lastOK = now
			if ms.Status != StatusAlive {
				ms.Status = StatusAlive
			}
		}
	}
	cb := n.refreshLocked()
	n.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// Handler serves GossipPath: merge the poster's view, answer with ours.
func (n *Node) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var v View
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&v); err != nil {
			http.Error(w, "bad gossip view: "+err.Error(), http.StatusBadRequest)
			return
		}
		n.absorb(v, true)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(n.view())
	})
}

// gossipTargets lists who this round should contact: every ACTIVE member
// plus any seed not currently active (bootstrap and partition rejoin).
func (n *Node) gossipTargets() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	seen := map[string]bool{n.self: true}
	var out []string
	for _, addr := range n.active {
		if !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	for _, s := range n.seeds {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// Sync runs one push-pull round against every target, then sweeps timers.
// It is the body of the heartbeat loop, exported so tests and servers can
// force convergence.
func (n *Node) Sync(ctx context.Context) {
	if n.static {
		return
	}
	targets := n.gossipTargets()
	var wg sync.WaitGroup
	for _, t := range targets {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			n.exchange(ctx, addr)
		}(t)
	}
	wg.Wait()
	now := time.Now()
	n.mu.Lock()
	n.sweepLocked(now)
	cb := n.refreshLocked()
	n.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// exchange POSTs our view to one peer and absorbs the reply.
func (n *Node) exchange(ctx context.Context, addr string) {
	body, err := json.Marshal(n.view())
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(ctx, 2*n.hb)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+GossipPath, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.httpc.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return
	}
	// Success: the peer answered, whoever it was.
	now := time.Now()
	n.mu.Lock()
	if ms, ok := n.members[addr]; ok && ms.Status != StatusLeft {
		ms.lastOK = now
		if ms.Status == StatusSuspect {
			ms.Status = StatusAlive
		}
	}
	n.mu.Unlock()
	n.absorb(v, false)
}

// Start launches the heartbeat loop (no-op in static mode). The first
// round fires immediately so a joining daemon is absorbed within one RTT
// of startup, not one heartbeat.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started || n.static {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ctx := context.Background()
		n.Sync(ctx)
		t := time.NewTicker(n.hb)
		defer t.Stop()
		for {
			select {
			case <-n.quit:
				return
			case <-t.C:
				n.Sync(ctx)
			}
		}
	}()
}

// Crash halts the gossip loop with no farewell — the silence of a killed
// process rather than a graceful leave. Peers must discover the failure
// through their own suspicion timers. Failure-injection harnesses use this;
// production shutdown goes through Stop.
func (n *Node) Crash() {
	n.mu.Lock()
	if n.leaving {
		n.mu.Unlock()
		return
	}
	n.leaving = true
	wasStarted := n.started
	n.mu.Unlock()
	if wasStarted {
		close(n.quit)
		n.wg.Wait()
	}
}

// Stop leaves gracefully: mark self Left at a bumped incarnation, push the
// farewell to the active members, and halt the loop. Peers drop a Left
// member immediately instead of waiting out the suspicion timers.
func (n *Node) Stop(ctx context.Context) {
	n.mu.Lock()
	if n.leaving {
		n.mu.Unlock()
		return
	}
	n.leaving = true
	wasStarted := n.started
	if !n.static {
		ms := n.members[n.self]
		ms.Incarnation++
		ms.Status = StatusLeft
		ms.downAt = time.Now()
	}
	cb := n.refreshLocked()
	n.mu.Unlock()
	if cb != nil {
		cb()
	}
	if wasStarted {
		close(n.quit)
		n.wg.Wait()
	}
	if n.static {
		return
	}
	// Farewell push: best effort, bounded by ctx.
	var wg sync.WaitGroup
	for _, t := range n.gossipTargets() {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			n.exchange(ctx, addr)
		}(t)
	}
	wg.Wait()
}
