package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// startNode binds a real listener first (the self address must be known
// before the node exists), builds the node, and serves its gossip handler.
func startNode(t *testing.T, cfg NodeConfig) *Node {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Self = "http://" + ln.Addr().String()
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("POST "+GossipPath, n.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	nodeServersMu.Lock()
	nodeServers[n] = srv
	nodeServersMu.Unlock()
	t.Cleanup(func() { srv.Close() })
	return n
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestJoinViaSeed is the bootstrap path: a second daemon pointed at a seed
// is absorbed by both sides within one sync, and both epochs move.
func TestJoinViaSeed(t *testing.T) {
	a := startNode(t, NodeConfig{HeartbeatEvery: 50 * time.Millisecond})
	if got := a.Len(); got != 1 {
		t.Fatalf("fresh node Len = %d, want 1", got)
	}
	e0 := a.Epoch()

	b := startNode(t, NodeConfig{HeartbeatEvery: 50 * time.Millisecond, Seeds: []string{a.Self()}})
	b.Sync(context.Background())

	for _, n := range []*Node{a, b} {
		if n.Len() != 2 {
			t.Fatalf("%s Len = %d after join, want 2", n.Self(), n.Len())
		}
	}
	if a.Epoch() <= e0 {
		t.Errorf("seed epoch did not bump on join: %d -> %d", e0, a.Epoch())
	}
	wantMembers := a.Members()
	gotMembers := b.Members()
	if len(wantMembers) != 2 || !slicesEqual(wantMembers, gotMembers) {
		t.Errorf("views diverge: a=%v b=%v", wantMembers, gotMembers)
	}
	if !a.IsOwner([32]byte{1}) && !b.IsOwner([32]byte{1}) {
		t.Error("no member owns a fingerprint")
	}
}

// TestTransitiveJoin: C seeds only on B, yet A learns of C through B's
// gossip — membership is transitive, not star-shaped around seeds.
func TestTransitiveJoin(t *testing.T) {
	a := startNode(t, NodeConfig{HeartbeatEvery: 50 * time.Millisecond})
	b := startNode(t, NodeConfig{HeartbeatEvery: 50 * time.Millisecond, Seeds: []string{a.Self()}})
	b.Sync(context.Background())
	c := startNode(t, NodeConfig{HeartbeatEvery: 50 * time.Millisecond, Seeds: []string{b.Self()}})
	c.Sync(context.Background())
	// A hasn't talked to C; one more B round spreads the word.
	b.Sync(context.Background())
	a.Sync(context.Background())
	for _, n := range []*Node{a, b, c} {
		if n.Len() != 3 {
			t.Fatalf("%s Len = %d, want 3 (members %v)", n.Self(), n.Len(), n.Members())
		}
	}
}

// TestSuspicionThenDeath drives the failure detector: a silent member is
// demoted suspect (still routable) then dead (dropped from the active
// set), each demotion observable through the epoch.
func TestSuspicionThenDeath(t *testing.T) {
	cfg := NodeConfig{
		HeartbeatEvery: 20 * time.Millisecond,
		SuspectAfter:   60 * time.Millisecond,
		DeadAfter:      150 * time.Millisecond,
	}
	a := startNode(t, cfg)
	bcfg := cfg
	bcfg.Seeds = []string{a.Self()}
	b := startNode(t, bcfg)
	b.Sync(context.Background())
	if a.Len() != 2 {
		t.Fatalf("join failed: a.Len = %d", a.Len())
	}

	// Silence B without a graceful leave: close its listener only.
	bURL := b.Self()
	killNodeServer(t, b)

	epochAtJoin := a.Epoch()
	waitFor(t, "suspicion", func() bool {
		a.Sync(context.Background())
		for _, m := range a.MemberEntries() {
			if m.Addr == bURL && m.Status == StatusSuspect {
				return true
			}
		}
		return false
	})
	// Suspect members stay in the active (routable) set.
	if a.Len() != 2 {
		t.Errorf("suspect member dropped from active set: Len = %d", a.Len())
	}
	waitFor(t, "death", func() bool {
		a.Sync(context.Background())
		return a.Len() == 1
	})
	if a.Epoch() <= epochAtJoin {
		t.Errorf("epoch did not bump on death: %d -> %d", epochAtJoin, a.Epoch())
	}
}

// killNodeServer silences a node abruptly (no graceful leave): its gossip
// listener closes but its Node is never stopped, mimicking a crash.
func killNodeServer(t *testing.T, n *Node) {
	t.Helper()
	nodeServersMu.Lock()
	srv := nodeServers[n]
	nodeServersMu.Unlock()
	if srv == nil {
		t.Fatal("no server registered for node")
	}
	srv.Close()
}

var (
	nodeServersMu sync.Mutex
	nodeServers   = map[*Node]*http.Server{}
)

// TestGracefulLeaveIsImmediate: Stop pushes a farewell, so the peer drops
// the member without waiting out suspicion timers.
func TestGracefulLeaveIsImmediate(t *testing.T) {
	a := startNode(t, NodeConfig{HeartbeatEvery: 50 * time.Millisecond})
	b := startNode(t, NodeConfig{HeartbeatEvery: 50 * time.Millisecond, Seeds: []string{a.Self()}})
	b.Sync(context.Background())
	if a.Len() != 2 {
		t.Fatalf("join failed: a.Len = %d", a.Len())
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	b.Stop(ctx)
	if got := a.Len(); got != 1 {
		t.Fatalf("a.Len = %d right after b.Stop, want 1 (farewell push)", got)
	}
	for _, m := range a.MemberEntries() {
		if m.Addr == b.Self() && m.Status != StatusLeft {
			t.Errorf("left member recorded as %s, want left", m.Status)
		}
	}
}

// TestRefutation: a node hearing itself declared dead reasserts alive at a
// higher incarnation, and the gossiper accepts the refutation.
func TestRefutation(t *testing.T) {
	a := startNode(t, NodeConfig{HeartbeatEvery: 50 * time.Millisecond})
	var selfInc int64
	for _, m := range a.MemberEntries() {
		if m.Addr == a.Self() {
			selfInc = m.Incarnation
		}
	}
	// Forge a view claiming A is dead at its current incarnation.
	forged := View{From: "http://127.0.0.1:1", Members: []Member{
		{Addr: a.Self(), Incarnation: selfInc, Status: StatusDead},
	}}
	body, _ := json.Marshal(forged)
	resp, err := http.Post(a.Self()+GossipPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var reply View
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, m := range reply.Members {
		if m.Addr == a.Self() {
			found = true
			if m.Status != StatusAlive {
				t.Errorf("self status after forged death = %s, want alive", m.Status)
			}
			if m.Incarnation <= selfInc {
				t.Errorf("incarnation not bumped past the claim: %d <= %d", m.Incarnation, selfInc)
			}
		}
	}
	if !found {
		t.Fatal("reply view lost the self entry")
	}
	if a.Len() != 1 {
		t.Errorf("a.Len = %d after refutation, want 1", a.Len())
	}
}

// TestEpochStableWithoutChurn: repeated syncs with a stable set must not
// bump the epoch — consumers treat epoch change as "re-rank now".
func TestEpochStableWithoutChurn(t *testing.T) {
	a := startNode(t, NodeConfig{HeartbeatEvery: 50 * time.Millisecond})
	b := startNode(t, NodeConfig{HeartbeatEvery: 50 * time.Millisecond, Seeds: []string{a.Self()}})
	b.Sync(context.Background())
	e := a.Epoch()
	for i := 0; i < 5; i++ {
		a.Sync(context.Background())
		b.Sync(context.Background())
	}
	if a.Epoch() != e {
		t.Errorf("epoch moved %d -> %d with a stable membership", e, a.Epoch())
	}
}

// TestStaticMode pins membership: no gossip merges, constant epoch, and
// the placement API matches the legacy Membership ranking.
func TestStaticMode(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	n, err := NewNode(NodeConfig{Self: "http://a:1", Static: peers})
	if err != nil {
		t.Fatal(err)
	}
	if !n.Static() || n.Len() != 3 || n.Epoch() != 1 {
		t.Fatalf("static node: static=%v len=%d epoch=%d", n.Static(), n.Len(), n.Epoch())
	}
	// Gossip about a fourth member must be ignored.
	n.absorb(View{From: "http://d:4", Members: []Member{{Addr: "http://d:4", Status: StatusAlive}}}, true)
	if n.Len() != 3 || n.Epoch() != 1 {
		t.Fatalf("static membership moved: len=%d epoch=%d", n.Len(), n.Epoch())
	}
	fp := [32]byte{42}
	want := Ranked(fp, peers)
	got := n.Ranked(fp)
	if !slicesEqual(want, got) {
		t.Errorf("static ranking diverges from Ranked: %v vs %v", got, want)
	}
	// Self must be a member.
	if _, err := NewNode(NodeConfig{Self: "http://x:9", Static: peers}); err == nil {
		t.Error("NewNode accepted a self outside the static list")
	}
}

// TestSeedsAndStaticExclusive guards the config surface.
func TestSeedsAndStaticExclusive(t *testing.T) {
	_, err := NewNode(NodeConfig{Self: "http://a:1", Seeds: []string{"http://b:2"}, Static: []string{"http://a:1"}})
	if err == nil {
		t.Fatal("NewNode accepted Seeds and Static together")
	}
}

// TestRestartRejoins: a node that dies and comes back on the same address
// (fresh incarnation) is re-absorbed despite the tombstone.
func TestRestartRejoins(t *testing.T) {
	cfg := NodeConfig{
		HeartbeatEvery: 20 * time.Millisecond,
		SuspectAfter:   40 * time.Millisecond,
		DeadAfter:      80 * time.Millisecond,
	}
	a := startNode(t, cfg)
	bcfg := cfg
	bcfg.Seeds = []string{a.Self()}
	b := startNode(t, bcfg)
	b.Sync(context.Background())
	bURL := b.Self()
	killNodeServer(t, b)
	waitFor(t, "death", func() bool {
		a.Sync(context.Background())
		return a.Len() == 1
	})
	// Restart on the same address with a newer incarnation.
	ln, err := net.Listen("tcp", bURL[len("http://"):])
	if err != nil {
		t.Skipf("could not rebind %s: %v", bURL, err)
	}
	b2, err := NewNode(NodeConfig{Self: bURL, Seeds: []string{a.Self()}, HeartbeatEvery: cfg.HeartbeatEvery})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("POST "+GossipPath, b2.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	b2.Sync(context.Background())
	if a.Len() != 2 {
		t.Fatalf("a.Len = %d after restart rejoin, want 2", a.Len())
	}
}

// TestHandlerRejectsGet: the gossip route is POST-only.
func TestHandlerRejectsGet(t *testing.T) {
	n, err := NewNode(NodeConfig{Self: "http://a:1"})
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	n.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, GossipPath, nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET gossip = %d, want 405", rr.Code)
	}
}

// TestOnChangeFires: the callback reports every active-set change with a
// monotonically increasing epoch.
func TestOnChangeFires(t *testing.T) {
	fired := make(chan struct{}, 16)
	var mu sync.Mutex
	var lastEpoch uint64
	a := startNode(t, NodeConfig{
		HeartbeatEvery: 50 * time.Millisecond,
		OnChange: func(epoch uint64, members []string) {
			mu.Lock()
			if epoch <= lastEpoch {
				t.Errorf("OnChange epoch went backwards: %d after %d", epoch, lastEpoch)
			}
			lastEpoch = epoch
			mu.Unlock()
			fired <- struct{}{}
		},
	})
	b := startNode(t, NodeConfig{HeartbeatEvery: 50 * time.Millisecond, Seeds: []string{a.Self()}})
	b.Sync(context.Background())
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("OnChange never fired on join")
	}
}
