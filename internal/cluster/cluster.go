// Package cluster implements the membership and placement rules of a
// multi-daemon simd deployment. Placement is rendezvous (highest-random-
// weight) hashing over the run fingerprint: every member computes, for each
// peer, a weight derived from hash(peer, fingerprint) and the peer with the
// highest weight owns the run. All members given the same peer list agree on
// every owner without any coordination, and removing a peer moves only the
// runs that peer owned — every other placement is unchanged (the property
// that makes failover cheap).
//
// The package is deliberately dependency-free (stdlib only): the server
// (internal/server) uses it to decide whether to execute or forward a
// submission, and the client pool (internal/server/client) uses the same
// ranking to route requests to owners directly.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Normalize canonicalizes a peer base URL so that the same daemon spelled
// slightly differently ("127.0.0.1:8404/", "http://127.0.0.1:8404") hashes
// identically everywhere. Placement compares normalized strings exactly, so
// every member must be given the same spelling of every peer (the host is
// not resolved: "localhost" and "127.0.0.1" are distinct members).
func Normalize(peer string) string {
	p := strings.TrimSpace(peer)
	p = strings.TrimRight(p, "/")
	if p == "" {
		return ""
	}
	if !strings.Contains(p, "://") {
		p = "http://" + p
	}
	return p
}

// ParsePeers splits a comma-separated peer list (the -peers flag syntax)
// into normalized, deduplicated base URLs, preserving first-seen order.
func ParsePeers(list string) []string {
	var peers []string
	seen := map[string]bool{}
	for _, part := range strings.Split(list, ",") {
		p := Normalize(part)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		peers = append(peers, p)
	}
	return peers
}

// weight is the rendezvous score of peer for fp: the first 8 bytes of
// sha256(peer || 0x00 || fp). The zero byte delimits the variable-length
// peer name from the fixed-length fingerprint, so no two (peer, fp) pairs
// collide by concatenation.
func weight(fp [32]byte, peer string) uint64 {
	h := sha256.New()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write(fp[:])
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// Ranked orders peers by descending rendezvous weight for fp: Ranked(...)[0]
// is the owner, and the remainder is the failover order. Ties (which require
// a 64-bit hash collision) break on the peer name so every member still
// agrees. The input slice is not modified; peers are hashed as given, so
// normalize them first.
func Ranked(fp [32]byte, peers []string) []string {
	ranked := append([]string(nil), peers...)
	weights := make(map[string]uint64, len(peers))
	for _, p := range ranked {
		weights[p] = weight(fp, p)
	}
	sort.Slice(ranked, func(i, j int) bool {
		wi, wj := weights[ranked[i]], weights[ranked[j]]
		if wi != wj {
			return wi > wj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// RankedKey ranks peers for an arbitrary string key (used for requests that
// have no run fingerprint, like whole-figure generation) by hashing the key
// first.
func RankedKey(key string, peers []string) []string {
	return Ranked(sha256.Sum256([]byte(key)), peers)
}

// Membership is one daemon's view of the cluster: the full (normalized,
// sorted, deduplicated) member list and which member this daemon is.
type Membership struct {
	self  string
	peers []string
}

// New validates a membership: self must appear in peers (every daemon must
// be told the same complete member list, itself included — a daemon that is
// not in its own list would disagree with every other member about
// placement). Peers are normalized and deduplicated; order does not matter.
func New(self string, peers []string) (*Membership, error) {
	self = Normalize(self)
	if self == "" {
		return nil, fmt.Errorf("cluster: empty self address")
	}
	seen := map[string]bool{}
	var norm []string
	for _, p := range peers {
		n := Normalize(p)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		norm = append(norm, n)
	}
	if len(norm) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	if !seen[self] {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v (every member must appear in its own -peers; use -self if the advertised address differs from the listen address)", self, norm)
	}
	sort.Strings(norm)
	return &Membership{self: self, peers: norm}, nil
}

// Self returns this daemon's normalized address.
func (m *Membership) Self() string { return m.self }

// Peers returns the full member list (normalized, sorted; includes self).
// The caller must not modify the returned slice.
func (m *Membership) Peers() []string { return m.peers }

// Len returns the member count.
func (m *Membership) Len() int { return len(m.peers) }

// Owner returns the member that owns fp.
func (m *Membership) Owner(fp [32]byte) string { return Ranked(fp, m.peers)[0] }

// IsOwner reports whether this daemon owns fp.
func (m *Membership) IsOwner(fp [32]byte) bool { return m.Owner(fp) == m.self }

// Ranked returns the full failover order for fp (owner first).
func (m *Membership) Ranked(fp [32]byte) []string { return Ranked(fp, m.peers) }
