package cluster

import (
	"crypto/sha256"
	"fmt"
	"reflect"
	"testing"
)

func fpOf(i int) [32]byte { return sha256.Sum256([]byte(fmt.Sprintf("run-%d", i))) }

var threePeers = []string{
	"http://127.0.0.1:8404",
	"http://127.0.0.1:8405",
	"http://127.0.0.1:8406",
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"http://127.0.0.1:8404":   "http://127.0.0.1:8404",
		"http://127.0.0.1:8404/":  "http://127.0.0.1:8404",
		"127.0.0.1:8404":          "http://127.0.0.1:8404",
		"  127.0.0.1:8404/ ":      "http://127.0.0.1:8404",
		"https://simd.example:80": "https://simd.example:80",
		"":                        "",
		"   ":                     "",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
	got := ParsePeers(" 127.0.0.1:1, http://127.0.0.1:1/ ,127.0.0.1:2,,")
	want := []string{"http://127.0.0.1:1", "http://127.0.0.1:2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParsePeers = %v, want %v", got, want)
	}
}

// TestRankedDeterministicAndOrderInsensitive: every member must compute the
// same owner regardless of the order its -peers flag listed the members in.
func TestRankedDeterministicAndOrderInsensitive(t *testing.T) {
	shuffled := []string{threePeers[2], threePeers[0], threePeers[1]}
	for i := 0; i < 200; i++ {
		fp := fpOf(i)
		a := Ranked(fp, threePeers)
		b := Ranked(fp, shuffled)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("fp %d: ranking depends on input order: %v vs %v", i, a, b)
		}
		if len(a) != 3 {
			t.Fatalf("fp %d: ranked %d peers, want 3", i, len(a))
		}
	}
	// Ranked must not reorder the caller's slice.
	orig := append([]string(nil), shuffled...)
	Ranked(fpOf(0), shuffled)
	if !reflect.DeepEqual(shuffled, orig) {
		t.Error("Ranked modified its input slice")
	}
}

// TestRankedMinimalDisruption: removing one peer moves only the runs that
// peer owned; every other run keeps its owner. This is the rendezvous-
// hashing property the failover design relies on.
func TestRankedMinimalDisruption(t *testing.T) {
	const n = 2000
	removed := threePeers[1]
	survivors := []string{threePeers[0], threePeers[2]}
	moved := 0
	for i := 0; i < n; i++ {
		fp := fpOf(i)
		before := Ranked(fp, threePeers)
		after := Ranked(fp, survivors)
		if before[0] == removed {
			moved++
			// The new owner must be the old second choice.
			if after[0] != before[1] {
				t.Fatalf("fp %d: owner after removal = %s, want old runner-up %s", i, after[0], before[1])
			}
		} else if after[0] != before[0] {
			t.Fatalf("fp %d: owner changed from %s to %s although %s was not the owner", i, before[0], after[0], removed)
		}
	}
	if moved == 0 || moved == n {
		t.Fatalf("removed peer owned %d/%d runs, want a proper subset", moved, n)
	}
}

// TestRankedBalance: ownership is roughly uniform across members.
func TestRankedBalance(t *testing.T) {
	const n = 3000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[Ranked(fpOf(i), threePeers)[0]]++
	}
	for _, p := range threePeers {
		if c := counts[p]; c < n/6 || c > n/2 {
			t.Errorf("peer %s owns %d/%d runs, want roughly %d", p, c, n, n/3)
		}
	}
}

func TestMembership(t *testing.T) {
	m, err := New("127.0.0.1:8405/", threePeers)
	if err != nil {
		t.Fatal(err)
	}
	if m.Self() != "http://127.0.0.1:8405" {
		t.Errorf("self = %q", m.Self())
	}
	if m.Len() != 3 {
		t.Errorf("len = %d, want 3", m.Len())
	}
	owned := 0
	for i := 0; i < 300; i++ {
		fp := fpOf(i)
		if got, want := m.Owner(fp), Ranked(fp, threePeers)[0]; got != want {
			t.Fatalf("owner mismatch: %s vs %s", got, want)
		}
		if m.IsOwner(fp) {
			owned++
		}
	}
	if owned == 0 || owned == 300 {
		t.Errorf("self owns %d/300 runs, want a proper subset", owned)
	}

	if _, err := New("http://10.0.0.1:1", threePeers); err == nil {
		t.Error("self outside the peer list was accepted")
	}
	if _, err := New("", threePeers); err == nil {
		t.Error("empty self was accepted")
	}
	if _, err := New("http://a:1", nil); err == nil {
		t.Error("empty peer list was accepted")
	}
}

func TestRankedKeyDeterministic(t *testing.T) {
	a := RankedKey("figure/3", threePeers)
	b := RankedKey("figure/3", threePeers)
	if !reflect.DeepEqual(a, b) {
		t.Error("RankedKey not deterministic")
	}
	if len(a) != 3 {
		t.Errorf("ranked %d peers, want 3", len(a))
	}
}
