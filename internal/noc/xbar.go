package noc

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/pool"
	"repro/internal/ring"
)

// inQueue is one router input buffer (the single virtual channel of a port).
// Capacity is expressed in flits; packets occupy their flit count.
type inQueue struct {
	packets   ring.Deque[*Packet]
	capFlits  int
	usedFlits int
	// injBusyUntil serializes injections over the link feeding this queue at
	// one flit per cycle (models the physical channel into the port).
	injBusyUntil uint64
	// servedBy is the output port currently holding this queue in its
	// candidate list (nil when the queue is empty or unregistered).
	servedBy *outPort
	router   *router
}

func (q *inQueue) freeFlits() int { return q.capFlits - q.usedFlits }

// reserve marks flits as committed to this queue before the packet arrives.
func (q *inQueue) reserve(flits int) { q.usedFlits += flits }

// pushReserved appends a packet whose flits were already reserved.
func (q *inQueue) pushReserved(p *Packet) {
	q.packets.PushBack(p)
}

// pop removes and returns the head packet, releasing its flits.
func (q *inQueue) pop() *Packet {
	p := q.packets.PopFront()
	q.usedFlits -= p.Flits
	return p
}

func (q *inQueue) head() *Packet {
	if q.packets.Len() == 0 {
		return nil
	}
	return q.packets.Front()
}

// outPort is a router output port. It serializes packets at one flit per
// cycle and forwards them either to a downstream input queue (next router
// stage) or to a destination endpoint.
type outPort struct {
	router *router
	// downstream is the next-stage input buffer, or nil when the port
	// delivers to destination endpoints directly.
	downstream *inQueue
	// bypassSink, when >= 0 and downstream == nil, asserts that every packet
	// leaving this port must be destined to that endpoint (used to validate
	// MC-router bypass routing).
	bypassSink  int
	longLink    bool
	linkLatency int
	pipeLatency int

	busyUntil  uint64
	candidates ring.Deque[*inQueue] // FIFO of input queues whose head packet routes here
	inflight   []inflightPkt
}

type inflightPkt struct {
	p        *Packet
	arriveAt uint64
}

// router is one switch: a set of input queues, a set of output ports and a
// routing function mapping a packet to the output port index that serves it.
type router struct {
	name     string
	inQs     []*inQueue
	outPorts []*outPort
	route    func(p *Packet) int
	gated    bool
}

// registerHead places q in the candidate list of the output port its head
// packet routes to.
func (r *router) registerHead(q *inQueue, net *xbarNet) {
	h := q.head()
	if h == nil || q.servedBy != nil {
		return
	}
	idx := r.route(h)
	if idx < 0 || idx >= len(r.outPorts) {
		panic(fmt.Sprintf("noc: router %s routed packet dst=%d to invalid port %d", r.name, h.Dst, idx))
	}
	port := r.outPorts[idx]
	port.candidates.PushBack(q)
	q.servedBy = port
}

// xbarNet is the shared engine behind all crossbar topologies.
type xbarNet struct {
	name    string
	numSrc  int
	numDst  int
	cycle   uint64
	stats   Stats
	routers []*router

	// injection mapping: source endpoint -> input queue (normal mode).
	injQ []*inQueue
	// injection link class per source endpoint.
	injLong []bool

	// bypass support (hierarchical crossbar only).
	supportsBypass bool
	bypassed       bool
	// applyBypass reconfigures the wiring; applied by SetBypass.
	applyBypass func(net *xbarNet, enable bool)

	inflightCount int
	delivered     []*Packet // reused scratch slice returned by Tick

	// Restore-path free-lists (see UseRestorePools); nil means allocate.
	restorePkts *pool.FreeList[Packet]
	restoreReqs *pool.FreeList[mem.Request]
}

// Inject implements Net.
func (n *xbarNet) Inject(p *Packet) bool {
	if p.Src < 0 || p.Src >= n.numSrc || p.Dst < 0 || p.Dst >= n.numDst {
		panic(fmt.Sprintf("noc %s: endpoint out of range src=%d dst=%d", n.name, p.Src, p.Dst))
	}
	q := n.injQ[p.Src]
	if q.freeFlits() < p.Flits || n.cycle < q.injBusyUntil {
		n.stats.InjectStallCycles++
		return false
	}
	p.InjectedAt = n.cycle
	q.reserve(p.Flits)
	q.pushReserved(p)
	q.injBusyUntil = n.cycle + uint64(p.Flits)
	q.router.registerHead(q, n)
	n.stats.Injected++
	n.stats.FlitsInjected += uint64(p.Flits)
	n.stats.BufferWrites += uint64(p.Flits)
	if n.injLong[p.Src] {
		n.stats.LongLinkFlits += uint64(p.Flits)
	} else {
		n.stats.ShortLinkFlits += uint64(p.Flits)
	}
	n.inflightCount++
	return true
}

// CanInject implements Net.
func (n *xbarNet) CanInject(src, flits int) bool {
	if src < 0 || src >= n.numSrc {
		return false
	}
	q := n.injQ[src]
	return q.freeFlits() >= flits && n.cycle >= q.injBusyUntil
}

// Pending implements Net.
func (n *xbarNet) Pending() bool { return n.inflightCount > 0 }

// Stats implements Net.
func (n *xbarNet) Stats() Stats { return n.stats }

// ResetStats implements Net.
func (n *xbarNet) ResetStats() { n.stats = Stats{} }

// Bypassed implements Net.
func (n *xbarNet) Bypassed() bool { return n.bypassed }

// SetBypass implements Net.
func (n *xbarNet) SetBypass(enabled bool) error {
	if !n.supportsBypass {
		if enabled {
			return ErrBypassUnsupported
		}
		return nil
	}
	if enabled == n.bypassed {
		return nil
	}
	if n.Pending() {
		return fmt.Errorf("noc %s: cannot reconfigure with %d packets in flight", n.name, n.inflightCount)
	}
	n.applyBypass(n, enabled)
	n.bypassed = enabled
	return nil
}

// Tick implements Net.
func (n *xbarNet) Tick() []*Packet {
	n.cycle++
	n.delivered = n.delivered[:0]

	for _, r := range n.routers {
		if r.gated {
			n.stats.GatedRouterCycles++
		} else {
			n.stats.RouterCycles++
		}
		for _, port := range r.outPorts {
			n.tickPort(r, port)
		}
	}
	return n.delivered
}

func (n *xbarNet) tickPort(r *router, port *outPort) {
	// 1. Land in-flight packets whose link/pipeline delay elapsed.
	if len(port.inflight) > 0 {
		remaining := port.inflight[:0]
		for _, f := range port.inflight {
			if n.cycle >= f.arriveAt {
				n.arrive(port, f.p)
			} else {
				remaining = append(remaining, f)
			}
		}
		port.inflight = remaining
	}

	// 2. Start a new transmission if the port is free and a candidate waits.
	if n.cycle < port.busyUntil || port.candidates.Len() == 0 {
		return
	}
	q := port.candidates.Front()
	p := q.head()
	if p == nil {
		// Defensive: should not happen, drop the stale candidate.
		port.candidates.PopFront()
		q.servedBy = nil
		return
	}
	if port.downstream != nil && port.downstream.freeFlits() < p.Flits {
		return // credit stall: wait for space downstream
	}

	// Dequeue from the input buffer and occupy the output for the packet's
	// serialization time.
	port.candidates.PopFront()
	q.servedBy = nil
	q.pop()
	r.registerHead(q, n)

	flits := uint64(p.Flits)
	n.stats.BufferReads += flits
	if !r.gated {
		n.stats.CrossbarFlits += flits
	}
	if port.longLink {
		n.stats.LongLinkFlits += flits
	} else {
		n.stats.ShortLinkFlits += flits
	}
	p.Hops++

	serialize := uint64(p.Flits)
	arrive := n.cycle + serialize + uint64(port.linkLatency+port.pipeLatency)
	port.busyUntil = n.cycle + serialize

	if port.downstream != nil {
		port.downstream.reserve(p.Flits)
	}
	port.inflight = append(port.inflight, inflightPkt{p: p, arriveAt: arrive})
}

// arrive lands packet p at the far end of port's link.
func (n *xbarNet) arrive(port *outPort, p *Packet) {
	if port.downstream != nil {
		dq := port.downstream
		dq.pushReserved(p)
		n.stats.BufferWrites += uint64(p.Flits)
		dq.router.registerHead(dq, n)
		return
	}
	if port.bypassSink >= 0 && p.Dst != port.bypassSink {
		panic(fmt.Sprintf("noc %s: bypassed port expected dst %d, got %d (private-mode routing violated)",
			n.name, port.bypassSink, p.Dst))
	}
	p.DeliveredAt = n.cycle
	n.stats.Delivered++
	n.stats.FlitsDelivered += uint64(p.Flits)
	n.stats.TotalLatency += p.DeliveredAt - p.InjectedAt
	n.stats.TotalHops += uint64(p.Hops)
	n.inflightCount--
	n.delivered = append(n.delivered, p)
}
