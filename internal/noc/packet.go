// Package noc models the GPU Network-on-Chip connecting SMs to the
// memory-side LLC slices.
//
// A GPU NoC consists of two independent unidirectional networks: the
// request network (SMs -> LLC slices) and the reply network (LLC slices ->
// SMs). Three crossbar topologies from the paper's design-space exploration
// (Section 3) are provided:
//
//   - Full crossbar: every SM has a dedicated port into one high-radix
//     switch that connects to every LLC slice.
//   - Concentrated crossbar (C-Xbar): groups of SMs / LLC slices share one
//     network port through concentrators and distributors.
//   - Hierarchical two-stage crossbar (H-Xbar): per-cluster SM-routers feed
//     per-memory-controller MC-routers. The MC-routers can be bypassed and
//     power-gated, which turns the memory-side LLC into a private-per-
//     cluster cache (Section 4.1) and saves NoC energy.
//
// The model uses wormhole switching approximated at packet granularity:
// each output port serializes packets at one flit per cycle, input buffers
// have finite flit capacity with credit-based backpressure, and arbitration
// is round-robin among competing inputs. This captures the quantities the
// paper's evaluation depends on — per-port bandwidth, queueing at hot LLC
// slices, hop latency and buffer/crossbar/link activity for the power
// model — without simulating individual flit traversals.
package noc

import (
	"fmt"

	"repro/internal/mem"
)

// Packet is one network transaction: a memory request (1 flit) or a data
// reply / write packet (header + cache line payload).
type Packet struct {
	ID          uint64
	Src         int // source endpoint index (SM index or LLC-slice index)
	Dst         int // destination endpoint index
	Flits       int
	InjectedAt  uint64
	DeliveredAt uint64
	Hops        int
	// Req carries the memory request across the request network (nil on the
	// reply network and for synthetic traffic). The payload fields are typed
	// rather than an `any` so that carrying a reply by value does not box an
	// allocation per packet.
	Req *mem.Request
	// Reply carries the response across the reply network (zero otherwise).
	Reply mem.Reply
}

// Stats accumulates activity and latency statistics for one network.
type Stats struct {
	Injected       uint64
	Delivered      uint64
	TotalLatency   uint64 // sum of (delivered - injected) over delivered packets
	TotalHops      uint64
	FlitsInjected  uint64
	FlitsDelivered uint64

	// Activity counters consumed by the power model.
	BufferWrites   uint64 // flits written into any input buffer
	BufferReads    uint64 // flits read out of any input buffer
	CrossbarFlits  uint64 // flits traversing a crossbar switch stage
	ShortLinkFlits uint64 // flits on short local links (SM<->SM-router, slice<->MC-router)
	LongLinkFlits  uint64 // flits on long global links (between router stages / across the die)

	InjectStallCycles uint64 // Inject calls rejected for lack of buffer space

	// Router activity for leakage accounting.
	RouterCycles      uint64 // sum over routers of cycles powered on
	GatedRouterCycles uint64 // sum over routers of cycles power-gated
}

// AvgLatency returns the mean packet latency in cycles.
func (s Stats) AvgLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Delivered)
}

// AvgHops returns the mean hop count per delivered packet.
func (s Stats) AvgHops() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.Delivered)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Injected += other.Injected
	s.Delivered += other.Delivered
	s.TotalLatency += other.TotalLatency
	s.TotalHops += other.TotalHops
	s.FlitsInjected += other.FlitsInjected
	s.FlitsDelivered += other.FlitsDelivered
	s.BufferWrites += other.BufferWrites
	s.BufferReads += other.BufferReads
	s.CrossbarFlits += other.CrossbarFlits
	s.ShortLinkFlits += other.ShortLinkFlits
	s.LongLinkFlits += other.LongLinkFlits
	s.InjectStallCycles += other.InjectStallCycles
	s.RouterCycles += other.RouterCycles
	s.GatedRouterCycles += other.GatedRouterCycles
}

// Net is a unidirectional interconnect between numbered source endpoints and
// numbered destination endpoints.
type Net interface {
	// Inject attempts to enqueue p at its source endpoint. It returns false
	// if the injection buffer lacks space; the caller must retry later.
	Inject(p *Packet) bool
	// CanInject reports whether a packet of the given flit count could be
	// injected at source src this cycle.
	CanInject(src, flits int) bool
	// Tick advances the network by one cycle and returns packets that
	// arrived at their destination this cycle.
	Tick() []*Packet
	// Pending reports whether any packet is still in flight.
	Pending() bool
	// Stats returns a snapshot of the accumulated statistics.
	Stats() Stats
	// ResetStats clears the accumulated statistics (in-flight packets are
	// unaffected).
	ResetStats()
	// SetBypass enables or disables second-stage (MC-router) bypass. Only
	// the hierarchical crossbar supports it; other topologies return an
	// error when enabling is requested.
	SetBypass(enabled bool) error
	// Bypassed reports whether the second stage is currently bypassed.
	Bypassed() bool
}

// ErrBypassUnsupported is returned by SetBypass(true) on topologies without
// a bypassable second stage.
var ErrBypassUnsupported = fmt.Errorf("noc: topology does not support second-stage bypass")
