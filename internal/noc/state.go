package noc

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/pool"
)

// UseRestorePools directs RestoreState to acquire packets and their carried
// requests from the given free-lists instead of allocating fresh ones — the
// single-container ownership invariant makes the two equivalent, and the
// pooled form keeps checkpoint resumes from re-growing the heap the owning
// GPU's steady-state loop already paid for. Either pool may be nil.
func UseRestorePools(n Net, pkts *pool.FreeList[Packet], reqs *pool.FreeList[mem.Request]) {
	switch net := n.(type) {
	case *xbarNet:
		net.restorePkts, net.restoreReqs = pkts, reqs
	case *idealNet:
		net.restorePkts, net.restoreReqs = pkts, reqs
	}
}

// PacketState mirrors one Packet by value. Req is flattened (HasReq guards
// nil); on restore both the packet and its request are acquired from the
// restore pools (or freshly allocated), which the single-container
// ownership invariant makes equivalent.
type PacketState struct {
	ID          uint64
	Src         int
	Dst         int
	Flits       int
	InjectedAt  uint64
	DeliveredAt uint64
	Hops        int
	HasReq      bool
	Req         mem.Request
	Reply       mem.Reply
}

func savePacket(p *Packet) PacketState {
	st := PacketState{
		ID:          p.ID,
		Src:         p.Src,
		Dst:         p.Dst,
		Flits:       p.Flits,
		InjectedAt:  p.InjectedAt,
		DeliveredAt: p.DeliveredAt,
		Hops:        p.Hops,
		Reply:       p.Reply,
	}
	if p.Req != nil {
		st.HasReq = true
		st.Req = *p.Req
	}
	return st
}

func restorePacket(st PacketState, pkts *pool.FreeList[Packet], reqs *pool.FreeList[mem.Request]) *Packet {
	var p *Packet
	if pkts != nil {
		p = pkts.Get()
	} else {
		p = &Packet{}
	}
	p.ID = st.ID
	p.Src = st.Src
	p.Dst = st.Dst
	p.Flits = st.Flits
	p.InjectedAt = st.InjectedAt
	p.DeliveredAt = st.DeliveredAt
	p.Hops = st.Hops
	p.Reply = st.Reply
	if st.HasReq {
		var r *mem.Request
		if reqs != nil {
			r = reqs.Get()
		} else {
			r = new(mem.Request)
		}
		*r = st.Req
		p.Req = r
	}
	return p
}

// InflightState mirrors one packet traversing a link.
type InflightState struct {
	Pkt      PacketState
	ArriveAt uint64
}

// QueueState mirrors one router input buffer. UsedFlits is saved explicitly:
// it can exceed the sum of resident packet flits when flits are reserved for
// packets still in flight toward this queue.
type QueueState struct {
	Packets      []PacketState
	UsedFlits    int
	InjBusyUntil uint64
}

// PortState mirrors one router output port. Candidates is the arbitration
// FIFO as indices into the owning router's input queues — its order decides
// which queue wins the port next, so it must round-trip exactly.
type PortState struct {
	BusyUntil  uint64
	Candidates []int
	Inflight   []InflightState
}

// RouterState mirrors one switch stage.
type RouterState struct {
	Queues []QueueState
	Ports  []PortState
}

// NetState is a complete snapshot of a Net. Kind selects the concrete
// implementation ("xbar" or "ideal"); Routers is used by crossbars, Inflight
// by the ideal network.
type NetState struct {
	Kind          string
	Cycle         uint64
	Stats         Stats
	Bypassed      bool
	InflightCount int
	Routers       []RouterState
	Inflight      []InflightState
}

// SaveState captures the network's mutable state. The topology itself
// (router wiring, injection mapping) is not saved: it is a pure function of
// the construction parameters plus the bypass flag.
func SaveState(n Net) (NetState, error) {
	switch net := n.(type) {
	case *xbarNet:
		return saveXbar(net), nil
	case *idealNet:
		return saveIdeal(net), nil
	default:
		return NetState{}, fmt.Errorf("noc: cannot snapshot network of type %T", n)
	}
}

// RestoreState overwrites n's mutable state with a snapshot taken from a net
// built with the same parameters and direction. n must be freshly built
// (empty): bypass is re-applied first, while the reconfiguration guard can
// still pass, and the queues are then refilled in place.
func RestoreState(n Net, st NetState) error {
	switch net := n.(type) {
	case *xbarNet:
		return restoreXbar(net, st)
	case *idealNet:
		return restoreIdeal(net, st)
	default:
		return fmt.Errorf("noc: cannot restore network of type %T", n)
	}
}

func saveXbar(n *xbarNet) NetState {
	st := NetState{
		Kind:          "xbar",
		Cycle:         n.cycle,
		Stats:         n.stats,
		Bypassed:      n.bypassed,
		InflightCount: n.inflightCount,
		Routers:       make([]RouterState, len(n.routers)),
	}
	for ri, r := range n.routers {
		rs := RouterState{
			Queues: make([]QueueState, len(r.inQs)),
			Ports:  make([]PortState, len(r.outPorts)),
		}
		for qi, q := range r.inQs {
			qs := QueueState{
				Packets:      make([]PacketState, 0, q.packets.Len()),
				UsedFlits:    q.usedFlits,
				InjBusyUntil: q.injBusyUntil,
			}
			for i := 0; i < q.packets.Len(); i++ {
				qs.Packets = append(qs.Packets, savePacket(q.packets.At(i)))
			}
			rs.Queues[qi] = qs
		}
		for pi, port := range r.outPorts {
			ps := PortState{
				BusyUntil:  port.busyUntil,
				Candidates: make([]int, 0, port.candidates.Len()),
				Inflight:   make([]InflightState, 0, len(port.inflight)),
			}
			for i := 0; i < port.candidates.Len(); i++ {
				cand := port.candidates.At(i)
				idx := -1
				for qi, q := range r.inQs {
					if q == cand {
						idx = qi
						break
					}
				}
				if idx < 0 {
					panic(fmt.Sprintf("noc %s: candidate queue not owned by its router", n.name))
				}
				ps.Candidates = append(ps.Candidates, idx)
			}
			for _, f := range port.inflight {
				ps.Inflight = append(ps.Inflight, InflightState{Pkt: savePacket(f.p), ArriveAt: f.arriveAt})
			}
			rs.Ports[pi] = ps
		}
		st.Routers[ri] = rs
	}
	return st
}

func restoreXbar(n *xbarNet, st NetState) error {
	if st.Kind != "xbar" {
		return fmt.Errorf("noc %s: snapshot kind %q, want xbar", n.name, st.Kind)
	}
	if len(st.Routers) != len(n.routers) {
		return fmt.Errorf("noc %s: snapshot has %d routers, net has %d", n.name, len(st.Routers), len(n.routers))
	}
	if err := n.SetBypass(st.Bypassed); err != nil {
		return fmt.Errorf("noc %s: %w", n.name, err)
	}
	for ri, rs := range st.Routers {
		r := n.routers[ri]
		if len(rs.Queues) != len(r.inQs) || len(rs.Ports) != len(r.outPorts) {
			return fmt.Errorf("noc %s: router %d shape mismatch", n.name, ri)
		}
		for qi, qs := range rs.Queues {
			q := r.inQs[qi]
			q.packets.Clear()
			for _, ps := range qs.Packets {
				q.packets.PushBack(restorePacket(ps, n.restorePkts, n.restoreReqs))
			}
			q.usedFlits = qs.UsedFlits
			q.injBusyUntil = qs.InjBusyUntil
			q.servedBy = nil
		}
		for pi, ps := range rs.Ports {
			port := r.outPorts[pi]
			port.busyUntil = ps.BusyUntil
			port.candidates.Clear()
			for _, qi := range ps.Candidates {
				if qi < 0 || qi >= len(r.inQs) {
					return fmt.Errorf("noc %s: router %d candidate index %d out of range", n.name, ri, qi)
				}
				q := r.inQs[qi]
				port.candidates.PushBack(q)
				q.servedBy = port
			}
			port.inflight = port.inflight[:0]
			for _, f := range ps.Inflight {
				port.inflight = append(port.inflight, inflightPkt{p: restorePacket(f.Pkt, n.restorePkts, n.restoreReqs), arriveAt: f.ArriveAt})
			}
		}
	}
	n.cycle = st.Cycle
	n.stats = st.Stats
	n.inflightCount = st.InflightCount
	return nil
}

func saveIdeal(n *idealNet) NetState {
	st := NetState{
		Kind:          "ideal",
		Cycle:         n.cycle,
		Stats:         n.stats,
		InflightCount: len(n.inflight),
		Inflight:      make([]InflightState, 0, len(n.inflight)),
	}
	for _, f := range n.inflight {
		st.Inflight = append(st.Inflight, InflightState{Pkt: savePacket(f.p), ArriveAt: f.arriveAt})
	}
	return st
}

func restoreIdeal(n *idealNet, st NetState) error {
	if st.Kind != "ideal" {
		return fmt.Errorf("noc %s: snapshot kind %q, want ideal", n.name, st.Kind)
	}
	n.inflight = n.inflight[:0]
	for _, f := range st.Inflight {
		n.inflight = append(n.inflight, inflightPkt{p: restorePacket(f.Pkt, n.restorePkts, n.restoreReqs), arriveAt: f.ArriveAt})
	}
	n.cycle = st.Cycle
	n.stats = st.Stats
	return nil
}
