package noc

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/pool"
)

// Direction selects which of the GPU's two unidirectional networks is built.
type Direction int

const (
	// Request is the SM -> LLC-slice network.
	Request Direction = iota
	// Reply is the LLC-slice -> SM network.
	Reply
)

func (d Direction) String() string {
	if d == Reply {
		return "reply"
	}
	return "request"
}

// Params collects the topology-relevant subset of the GPU configuration.
type Params struct {
	Topology       config.NoCTopology
	NumSMs         int
	NumClusters    int
	NumMCs         int
	SlicesPerMC    int
	Concentration  int
	BufferFlits    int // input buffer capacity per port (VCs * flits per VC)
	RouterPipeline int
	LinkLatency    int
	IdealLatency   int // fixed latency for the ideal network
}

// ParamsFromConfig extracts NoC parameters from a GPU configuration.
func ParamsFromConfig(cfg config.Config) Params {
	return Params{
		Topology:       cfg.NoC,
		NumSMs:         cfg.NumSMs,
		NumClusters:    cfg.NumClusters,
		NumMCs:         cfg.NumMemControllers,
		SlicesPerMC:    cfg.LLCSlicesPerMC,
		Concentration:  cfg.Concentration,
		BufferFlits:    cfg.VCsPerPort * cfg.FlitsPerVC,
		RouterPipeline: cfg.RouterPipeline,
		LinkLatency:    cfg.LinkLatency,
		IdealLatency:   cfg.RouterPipeline + cfg.LinkLatency,
	}
}

func (p Params) numSlices() int     { return p.NumMCs * p.SlicesPerMC }
func (p Params) smsPerCluster() int { return p.NumSMs / p.NumClusters }

func (p Params) validate() error {
	if p.NumSMs <= 0 || p.NumClusters <= 0 || p.NumMCs <= 0 || p.SlicesPerMC <= 0 {
		return fmt.Errorf("noc: invalid params %+v", p)
	}
	if p.NumSMs%p.NumClusters != 0 {
		return fmt.Errorf("noc: NumSMs (%d) not divisible by NumClusters (%d)", p.NumSMs, p.NumClusters)
	}
	if p.BufferFlits <= 0 {
		return fmt.Errorf("noc: BufferFlits must be positive")
	}
	if p.Topology == config.NoCConcentrated {
		if p.Concentration <= 0 ||
			p.NumSMs%p.Concentration != 0 || p.numSlices()%p.Concentration != 0 {
			return fmt.Errorf("noc: concentration %d does not divide SMs (%d) and slices (%d)",
				p.Concentration, p.NumSMs, p.numSlices())
		}
	}
	return nil
}

// New builds the network for the given direction and topology.
func New(p Params, dir Direction) (Net, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	switch p.Topology {
	case config.NoCFull:
		return newSingleStage(p, dir, 1), nil
	case config.NoCConcentrated:
		return newSingleStage(p, dir, p.Concentration), nil
	case config.NoCHierarchical:
		return newHierarchical(p, dir), nil
	case config.NoCIdeal:
		return newIdeal(p, dir), nil
	default:
		return nil, fmt.Errorf("noc: unknown topology %v", p.Topology)
	}
}

// MustNew is New for validated configurations; it panics on error.
func MustNew(p Params, dir Direction) Net {
	n, err := New(p, dir)
	if err != nil {
		panic(err)
	}
	return n
}

// ---------------------------------------------------------------------------
// Full and concentrated crossbars (single stage)
// ---------------------------------------------------------------------------

// newSingleStage builds a full crossbar (concentration 1) or a concentrated
// crossbar (concentration > 1): one switch whose input ports are shared by
// `concentration` sources and whose output ports are shared by
// `concentration` destinations.
func newSingleStage(p Params, dir Direction, concentration int) *xbarNet {
	numSrc, numDst := p.NumSMs, p.numSlices()
	if dir == Reply {
		numSrc, numDst = p.numSlices(), p.NumSMs
	}
	name := "full-xbar"
	if concentration > 1 {
		name = fmt.Sprintf("c-xbar/%d", concentration)
	}
	n := &xbarNet{
		name:    fmt.Sprintf("%s-%s", name, dir),
		numSrc:  numSrc,
		numDst:  numDst,
		injQ:    make([]*inQueue, numSrc),
		injLong: make([]bool, numSrc),
	}
	inPorts := numSrc / concentration
	outPorts := numDst / concentration

	r := &router{name: name}
	r.route = func(pk *Packet) int { return pk.Dst / concentration }
	r.inQs = make([]*inQueue, inPorts)
	for i := range r.inQs {
		r.inQs[i] = &inQueue{capFlits: p.BufferFlits, router: r}
	}
	r.outPorts = make([]*outPort, outPorts)
	for i := range r.outPorts {
		r.outPorts[i] = &outPort{
			router:      r,
			bypassSink:  -1,
			longLink:    true, // monolithic crossbars use long global links
			linkLatency: p.LinkLatency,
			pipeLatency: p.RouterPipeline,
		}
	}
	n.routers = []*router{r}
	for s := 0; s < numSrc; s++ {
		n.injQ[s] = r.inQs[s/concentration]
		n.injLong[s] = true
	}
	return n
}

// ---------------------------------------------------------------------------
// Hierarchical two-stage crossbar (H-Xbar)
// ---------------------------------------------------------------------------

// newHierarchical builds the paper's H-Xbar. In the request direction the
// first stage is the per-cluster SM-routers and the second stage is the
// per-memory-controller MC-routers; in the reply direction the stages are
// swapped. The MC-router stage can be bypassed (and power-gated) to turn the
// LLC into a per-cluster private cache.
func newHierarchical(p Params, dir Direction) *xbarNet {
	switch dir {
	case Request:
		return newHXbarRequest(p)
	default:
		return newHXbarReply(p)
	}
}

func newHXbarRequest(p Params) *xbarNet {
	numSrc, numDst := p.NumSMs, p.numSlices()
	smsPerCl := p.smsPerCluster()
	n := &xbarNet{
		name:           "h-xbar-request",
		numSrc:         numSrc,
		numDst:         numDst,
		injQ:           make([]*inQueue, numSrc),
		injLong:        make([]bool, numSrc),
		supportsBypass: true,
	}

	// Second stage: MC-routers, one per memory controller.
	mcRouters := make([]*router, p.NumMCs)
	for m := 0; m < p.NumMCs; m++ {
		r := &router{name: fmt.Sprintf("mc-router-%d", m)}
		r.route = func(pk *Packet) int { return pk.Dst % p.SlicesPerMC }
		r.inQs = make([]*inQueue, p.NumClusters)
		for i := range r.inQs {
			r.inQs[i] = &inQueue{capFlits: p.BufferFlits, router: r}
		}
		r.outPorts = make([]*outPort, p.SlicesPerMC)
		for i := range r.outPorts {
			r.outPorts[i] = &outPort{
				router:      r,
				bypassSink:  -1,
				longLink:    false, // MC-router sits next to its LLC slices
				linkLatency: 0,
				pipeLatency: p.RouterPipeline,
			}
		}
		mcRouters[m] = r
	}

	// First stage: SM-routers, one per cluster.
	smRouters := make([]*router, p.NumClusters)
	for k := 0; k < p.NumClusters; k++ {
		r := &router{name: fmt.Sprintf("sm-router-%d", k)}
		r.route = func(pk *Packet) int { return pk.Dst / p.SlicesPerMC }
		r.inQs = make([]*inQueue, smsPerCl)
		for i := range r.inQs {
			r.inQs[i] = &inQueue{capFlits: p.BufferFlits, router: r}
		}
		r.outPorts = make([]*outPort, p.NumMCs)
		for m := 0; m < p.NumMCs; m++ {
			r.outPorts[m] = &outPort{
				router:      r,
				bypassSink:  -1,
				downstream:  mcRouters[m].inQs[k],
				longLink:    true, // long inter-stage links across the die
				linkLatency: p.LinkLatency,
				pipeLatency: p.RouterPipeline,
			}
		}
		smRouters[k] = r
	}

	n.routers = append(n.routers, smRouters...)
	n.routers = append(n.routers, mcRouters...)
	for s := 0; s < numSrc; s++ {
		n.injQ[s] = smRouters[s/smsPerCl].inQs[s%smsPerCl]
		n.injLong[s] = false // short SM -> SM-router links
	}

	// Bypass: cluster k's output toward MC m delivers straight to slice
	// m*SlicesPerMC+k; the MC-routers are power-gated.
	n.applyBypass = func(net *xbarNet, enable bool) {
		for k, sr := range smRouters {
			for m, port := range sr.outPorts {
				if enable {
					port.downstream = nil
					port.bypassSink = m*p.SlicesPerMC + k
					port.pipeLatency = p.RouterPipeline // only the first-stage pipeline remains
				} else {
					port.downstream = mcRouters[m].inQs[k]
					port.bypassSink = -1
					port.pipeLatency = p.RouterPipeline
				}
			}
		}
		for _, mr := range mcRouters {
			mr.gated = enable
		}
	}
	return n
}

func newHXbarReply(p Params) *xbarNet {
	numSrc, numDst := p.numSlices(), p.NumSMs
	smsPerCl := p.smsPerCluster()
	n := &xbarNet{
		name:           "h-xbar-reply",
		numSrc:         numSrc,
		numDst:         numDst,
		injQ:           make([]*inQueue, numSrc),
		injLong:        make([]bool, numSrc),
		supportsBypass: true,
	}

	// Second stage: SM-routers, one per cluster.
	smRouters := make([]*router, p.NumClusters)
	for k := 0; k < p.NumClusters; k++ {
		r := &router{name: fmt.Sprintf("sm-router-%d", k)}
		r.route = func(pk *Packet) int { return pk.Dst % smsPerCl }
		r.inQs = make([]*inQueue, p.NumMCs)
		for i := range r.inQs {
			r.inQs[i] = &inQueue{capFlits: p.BufferFlits, router: r}
		}
		r.outPorts = make([]*outPort, smsPerCl)
		for i := range r.outPorts {
			r.outPorts[i] = &outPort{
				router:      r,
				bypassSink:  -1,
				longLink:    false, // short SM-router -> SM links
				linkLatency: 0,
				pipeLatency: p.RouterPipeline,
			}
		}
		smRouters[k] = r
	}

	// First stage: MC-routers, one per memory controller.
	mcRouters := make([]*router, p.NumMCs)
	for m := 0; m < p.NumMCs; m++ {
		r := &router{name: fmt.Sprintf("mc-router-%d", m)}
		r.route = func(pk *Packet) int { return pk.Dst / smsPerCl }
		r.inQs = make([]*inQueue, p.SlicesPerMC)
		for i := range r.inQs {
			r.inQs[i] = &inQueue{capFlits: p.BufferFlits, router: r}
		}
		r.outPorts = make([]*outPort, p.NumClusters)
		for k := 0; k < p.NumClusters; k++ {
			r.outPorts[k] = &outPort{
				router:      r,
				bypassSink:  -1,
				downstream:  smRouters[k].inQs[m],
				longLink:    true,
				linkLatency: p.LinkLatency,
				pipeLatency: p.RouterPipeline,
			}
		}
		mcRouters[m] = r
	}

	n.routers = append(n.routers, mcRouters...)
	n.routers = append(n.routers, smRouters...)
	for s := 0; s < numSrc; s++ {
		n.injQ[s] = mcRouters[s/p.SlicesPerMC].inQs[s%p.SlicesPerMC]
		n.injLong[s] = false // short slice -> MC-router links
	}

	// Bypass: slice (m, k) only ever replies to cluster k in private mode,
	// so it injects directly into SM-router k's input from MC m; the
	// MC-routers are power-gated.
	n.applyBypass = func(net *xbarNet, enable bool) {
		for s := 0; s < numSrc; s++ {
			m, k := s/p.SlicesPerMC, s%p.SlicesPerMC
			if enable {
				net.injQ[s] = smRouters[k].inQs[m]
			} else {
				net.injQ[s] = mcRouters[m].inQs[k]
			}
		}
		for _, mr := range mcRouters {
			mr.gated = enable
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Ideal network (ablation only)
// ---------------------------------------------------------------------------

// idealNet delivers every packet after a fixed latency with unlimited
// bandwidth. It exists only for the "infinite NoC" ablation benchmark.
type idealNet struct {
	name     string
	numSrc   int
	numDst   int
	latency  uint64
	cycle    uint64
	stats    Stats
	inflight []inflightPkt
	out      []*Packet

	// Restore-path free-lists (see UseRestorePools); nil means allocate.
	restorePkts *pool.FreeList[Packet]
	restoreReqs *pool.FreeList[mem.Request]
}

func newIdeal(p Params, dir Direction) *idealNet {
	numSrc, numDst := p.NumSMs, p.numSlices()
	if dir == Reply {
		numSrc, numDst = p.numSlices(), p.NumSMs
	}
	lat := uint64(p.IdealLatency)
	if lat == 0 {
		lat = 1
	}
	return &idealNet{
		name:    fmt.Sprintf("ideal-%s", dir),
		numSrc:  numSrc,
		numDst:  numDst,
		latency: lat,
	}
}

func (n *idealNet) Inject(p *Packet) bool {
	if p.Src < 0 || p.Src >= n.numSrc || p.Dst < 0 || p.Dst >= n.numDst {
		panic(fmt.Sprintf("noc %s: endpoint out of range src=%d dst=%d", n.name, p.Src, p.Dst))
	}
	p.InjectedAt = n.cycle
	p.Hops = 1
	n.stats.Injected++
	n.stats.FlitsInjected += uint64(p.Flits)
	n.inflight = append(n.inflight, inflightPkt{p: p, arriveAt: n.cycle + n.latency})
	return true
}

func (n *idealNet) CanInject(src, flits int) bool { return true }

func (n *idealNet) Tick() []*Packet {
	n.cycle++
	n.out = n.out[:0]
	remaining := n.inflight[:0]
	for _, f := range n.inflight {
		if n.cycle >= f.arriveAt {
			f.p.DeliveredAt = n.cycle
			n.stats.Delivered++
			n.stats.FlitsDelivered += uint64(f.p.Flits)
			n.stats.TotalLatency += f.p.DeliveredAt - f.p.InjectedAt
			n.stats.TotalHops++
			n.out = append(n.out, f.p)
		} else {
			remaining = append(remaining, f)
		}
	}
	n.inflight = remaining
	return n.out
}

func (n *idealNet) Pending() bool { return len(n.inflight) > 0 }

func (n *idealNet) Stats() Stats { return n.stats }

func (n *idealNet) ResetStats() { n.stats = Stats{} }

func (n *idealNet) SetBypass(enabled bool) error {
	if enabled {
		return ErrBypassUnsupported
	}
	return nil
}

func (n *idealNet) Bypassed() bool { return false }
