package noc

import (
	"math/rand"
	"testing"

	"repro/internal/config"
)

func testParams(topo config.NoCTopology) Params {
	cfg := config.Baseline()
	cfg.NoC = topo
	return ParamsFromConfig(cfg)
}

// drain ticks the network until no packets are in flight, returning all
// delivered packets. It fails the test if the network does not drain.
func drain(t *testing.T, n Net, limit int) []*Packet {
	t.Helper()
	var all []*Packet
	for i := 0; i < limit; i++ {
		all = append(all, n.Tick()...)
		if !n.Pending() {
			return all
		}
	}
	t.Fatalf("network did not drain within %d cycles", limit)
	return nil
}

func allTopologies() []config.NoCTopology {
	return []config.NoCTopology{config.NoCFull, config.NoCConcentrated, config.NoCHierarchical, config.NoCIdeal}
}

func TestNewValidation(t *testing.T) {
	p := testParams(config.NoCFull)
	p.NumSMs = 0
	if _, err := New(p, Request); err == nil {
		t.Error("expected error for zero SMs")
	}
	p = testParams(config.NoCConcentrated)
	p.Concentration = 3
	if _, err := New(p, Request); err == nil {
		t.Error("expected error for non-dividing concentration")
	}
	p = testParams(config.NoCFull)
	p.BufferFlits = 0
	if _, err := New(p, Request); err == nil {
		t.Error("expected error for zero buffer")
	}
	p = testParams(config.NoCTopology(42))
	if _, err := New(p, Request); err == nil {
		t.Error("expected error for unknown topology")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p := testParams(config.NoCFull)
	p.NumSMs = -1
	MustNew(p, Request)
}

func TestSinglePacketDeliveryAllTopologies(t *testing.T) {
	for _, topo := range allTopologies() {
		for _, dir := range []Direction{Request, Reply} {
			p := testParams(topo)
			n := MustNew(p, dir)
			numDst := p.numSlices()
			if dir == Reply {
				numDst = p.NumSMs
			}
			pkt := &Packet{ID: 1, Src: 0, Dst: numDst - 1, Flits: 5}
			if !n.Inject(pkt) {
				t.Fatalf("%v/%v: inject failed", topo, dir)
			}
			got := drain(t, n, 1000)
			if len(got) != 1 || got[0].ID != 1 {
				t.Fatalf("%v/%v: delivered %d packets", topo, dir, len(got))
			}
			if got[0].DeliveredAt <= got[0].InjectedAt {
				t.Errorf("%v/%v: non-positive latency", topo, dir)
			}
			st := n.Stats()
			if st.Injected != 1 || st.Delivered != 1 {
				t.Errorf("%v/%v: stats %+v", topo, dir, st)
			}
		}
	}
}

func TestLatencyOrdering(t *testing.T) {
	// A full crossbar is a single hop; H-Xbar takes two hops and should have
	// a (slightly) higher unloaded latency. Both should be well below 100
	// cycles unloaded.
	lat := func(topo config.NoCTopology) float64 {
		p := testParams(topo)
		n := MustNew(p, Request)
		for i := 0; i < 8; i++ {
			if !n.Inject(&Packet{ID: uint64(i), Src: i * 10, Dst: i * 8, Flits: 1}) {
				t.Fatal("inject failed")
			}
		}
		drain(t, n, 1000)
		return n.Stats().AvgLatency()
	}
	full := lat(config.NoCFull)
	hier := lat(config.NoCHierarchical)
	if hier <= full {
		t.Errorf("H-Xbar unloaded latency (%.1f) should exceed full crossbar (%.1f) due to the extra hop", hier, full)
	}
	if full > 50 || hier > 100 {
		t.Errorf("unloaded latencies too high: full=%.1f hier=%.1f", full, hier)
	}
}

func TestHopCounts(t *testing.T) {
	p := testParams(config.NoCHierarchical)
	n := MustNew(p, Request)
	n.Inject(&Packet{ID: 1, Src: 0, Dst: 63, Flits: 1})
	got := drain(t, n, 1000)
	if got[0].Hops != 2 {
		t.Errorf("H-Xbar hops = %d, want 2", got[0].Hops)
	}
	nf := MustNew(testParams(config.NoCFull), Request)
	nf.Inject(&Packet{ID: 1, Src: 0, Dst: 63, Flits: 1})
	got = drain(t, nf, 1000)
	if got[0].Hops != 1 {
		t.Errorf("full-xbar hops = %d, want 1", got[0].Hops)
	}
}

// TestHotSliceSerialization reproduces the central bottleneck of the paper:
// when all SMs send to a single LLC slice, the slice's network port
// serializes deliveries at one flit per cycle regardless of topology.
func TestHotSliceSerialization(t *testing.T) {
	for _, topo := range []config.NoCTopology{config.NoCFull, config.NoCHierarchical} {
		p := testParams(topo)
		n := MustNew(p, Request)
		const pkts = 64
		injected := 0
		cycles := 0
		delivered := 0
		for delivered < pkts && cycles < 10000 {
			for injected < pkts {
				// All SMs target slice 0.
				if !n.Inject(&Packet{ID: uint64(injected), Src: injected % p.NumSMs, Dst: 0, Flits: 1}) {
					break
				}
				injected++
			}
			delivered += len(n.Tick())
			cycles++
		}
		if delivered < pkts {
			t.Fatalf("%v: only %d/%d delivered", topo, delivered, pkts)
		}
		// The destination port serializes at 1 flit/cycle, so >= pkts cycles.
		if cycles < pkts {
			t.Errorf("%v: %d single-flit packets to one slice delivered in %d cycles (< serialization bound)",
				topo, pkts, cycles)
		}
	}
}

// TestSpreadBeatsHotspot verifies that distributing the same traffic over all
// slices completes much faster than concentrating it on one slice — the
// bandwidth argument behind private caching.
func TestSpreadBeatsHotspot(t *testing.T) {
	run := func(spread bool) int {
		p := testParams(config.NoCHierarchical)
		n := MustNew(p, Request)
		const pkts = 256
		injected, delivered, cycles := 0, 0, 0
		for delivered < pkts && cycles < 100000 {
			for injected < pkts {
				dst := 0
				if spread {
					dst = injected % p.numSlices()
				}
				if !n.Inject(&Packet{ID: uint64(injected), Src: injected % p.NumSMs, Dst: dst, Flits: 5}) {
					break
				}
				injected++
			}
			delivered += len(n.Tick())
			cycles++
		}
		if delivered < pkts {
			t.Fatalf("only %d delivered", delivered)
		}
		return cycles
	}
	hot := run(false)
	spread := run(true)
	if spread*4 > hot {
		t.Errorf("spread traffic (%d cycles) should be at least 4x faster than hotspot (%d cycles)", spread, hot)
	}
}

func TestBackpressure(t *testing.T) {
	p := testParams(config.NoCFull)
	n := MustNew(p, Request)
	// Fill source 0's injection buffer (8 flits) with 5-flit packets: the
	// first fits, the second does not fit immediately.
	if !n.Inject(&Packet{ID: 1, Src: 0, Dst: 0, Flits: 5}) {
		t.Fatal("first inject should succeed")
	}
	if n.Inject(&Packet{ID: 2, Src: 0, Dst: 0, Flits: 5}) {
		t.Fatal("second inject should be rejected (buffer has 3 free flits)")
	}
	if n.Stats().InjectStallCycles != 1 {
		t.Errorf("InjectStallCycles = %d, want 1", n.Stats().InjectStallCycles)
	}
	if n.CanInject(0, 5) {
		t.Error("CanInject should be false while the buffer is occupied")
	}
	drain(t, n, 1000)
	if !n.CanInject(0, 5) {
		t.Error("CanInject should be true after draining")
	}
}

func TestBypassRequestNetwork(t *testing.T) {
	p := testParams(config.NoCHierarchical)
	n := MustNew(p, Request)
	if n.Bypassed() {
		t.Fatal("network should start in shared (non-bypassed) mode")
	}
	if err := n.SetBypass(true); err != nil {
		t.Fatalf("SetBypass: %v", err)
	}
	if !n.Bypassed() {
		t.Fatal("Bypassed() should report true")
	}
	// Cluster of SM 0 is cluster 0, so its private slice in MC 3 is 3*8+0.
	pkt := &Packet{ID: 1, Src: 0, Dst: 24, Flits: 1}
	if !n.Inject(pkt) {
		t.Fatal("inject failed")
	}
	got := drain(t, n, 1000)
	if len(got) != 1 || got[0].Dst != 24 {
		t.Fatalf("bypass delivery failed: %+v", got)
	}
	if got[0].Hops != 1 {
		t.Errorf("bypassed path hops = %d, want 1 (MC-router skipped)", got[0].Hops)
	}
	st := n.Stats()
	if st.GatedRouterCycles == 0 {
		t.Error("expected gated router cycles while bypassed")
	}
	// Disable again and check two-hop routing returns.
	if err := n.SetBypass(false); err != nil {
		t.Fatal(err)
	}
	n.Inject(&Packet{ID: 2, Src: 0, Dst: 25, Flits: 1})
	got = drain(t, n, 1000)
	if got[0].Hops != 2 {
		t.Errorf("after un-bypass hops = %d, want 2", got[0].Hops)
	}
}

func TestBypassReplyNetwork(t *testing.T) {
	p := testParams(config.NoCHierarchical)
	n := MustNew(p, Reply)
	if err := n.SetBypass(true); err != nil {
		t.Fatal(err)
	}
	// Slice 24 = MC 3, local slice 0 -> private to cluster 0 (SMs 0..9).
	pkt := &Packet{ID: 1, Src: 24, Dst: 7, Flits: 5}
	if !n.Inject(pkt) {
		t.Fatal("inject failed")
	}
	got := drain(t, n, 1000)
	if len(got) != 1 || got[0].Dst != 7 {
		t.Fatalf("bypass reply delivery failed: %+v", got)
	}
	if got[0].Hops != 1 {
		t.Errorf("bypassed reply hops = %d, want 1", got[0].Hops)
	}
}

func TestBypassViolationPanics(t *testing.T) {
	p := testParams(config.NoCHierarchical)
	n := MustNew(p, Request)
	if err := n.SetBypass(true); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong-slice routing under bypass")
		}
	}()
	// SM 0 (cluster 0) sends to slice 1 (cluster 1's private slice): illegal
	// in private mode.
	n.Inject(&Packet{ID: 1, Src: 0, Dst: 1, Flits: 1})
	drain(t, n, 1000)
}

func TestBypassRejectedWhilePending(t *testing.T) {
	p := testParams(config.NoCHierarchical)
	n := MustNew(p, Request)
	n.Inject(&Packet{ID: 1, Src: 0, Dst: 0, Flits: 5})
	if err := n.SetBypass(true); err == nil {
		t.Error("SetBypass must fail while packets are in flight")
	}
	drain(t, n, 1000)
	if err := n.SetBypass(true); err != nil {
		t.Errorf("SetBypass after drain: %v", err)
	}
}

func TestBypassUnsupportedTopologies(t *testing.T) {
	for _, topo := range []config.NoCTopology{config.NoCFull, config.NoCConcentrated, config.NoCIdeal} {
		n := MustNew(testParams(topo), Request)
		if err := n.SetBypass(true); err == nil {
			t.Errorf("%v: SetBypass(true) should fail", topo)
		}
		if err := n.SetBypass(false); err != nil {
			t.Errorf("%v: SetBypass(false) should be a no-op, got %v", topo, err)
		}
	}
}

// TestFlitConservation is the conservation property: after draining, every
// injected packet and flit has been delivered, on every topology, for random
// traffic.
func TestFlitConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, topo := range allTopologies() {
		for _, dir := range []Direction{Request, Reply} {
			p := testParams(topo)
			n := MustNew(p, dir)
			numSrc, numDst := p.NumSMs, p.numSlices()
			if dir == Reply {
				numSrc, numDst = p.numSlices(), p.NumSMs
			}
			const want = 400
			injected := 0
			for cycles := 0; injected < want && cycles < 100000; cycles++ {
				for tries := 0; tries < 4 && injected < want; tries++ {
					pkt := &Packet{
						ID:    uint64(injected),
						Src:   rng.Intn(numSrc),
						Dst:   rng.Intn(numDst),
						Flits: 1 + 4*rng.Intn(2),
					}
					if n.Inject(pkt) {
						injected++
					}
				}
				n.Tick()
			}
			if injected != want {
				t.Fatalf("%v/%v: only injected %d/%d", topo, dir, injected, want)
			}
			for i := 0; i < 100000 && n.Pending(); i++ {
				n.Tick()
			}
			st := n.Stats()
			if st.Delivered != st.Injected {
				t.Errorf("%v/%v: delivered %d != injected %d", topo, dir, st.Delivered, st.Injected)
			}
			if st.FlitsDelivered != st.FlitsInjected {
				t.Errorf("%v/%v: flits delivered %d != injected %d", topo, dir, st.FlitsDelivered, st.FlitsInjected)
			}
		}
	}
}

func TestConcentratedHasFewerPortsAndMoreContention(t *testing.T) {
	// Same random traffic through full vs concentrated (c=2): the
	// concentrated crossbar should take at least as long (usually longer).
	run := func(topo config.NoCTopology) int {
		rng := rand.New(rand.NewSource(5))
		p := testParams(topo)
		n := MustNew(p, Request)
		const want = 512
		injected, cycles := 0, 0
		for ; injected < want || n.Pending(); cycles++ {
			if cycles > 200000 {
				t.Fatal("did not finish")
			}
			for tries := 0; tries < 8 && injected < want; tries++ {
				if n.Inject(&Packet{ID: uint64(injected), Src: rng.Intn(p.NumSMs), Dst: rng.Intn(p.numSlices()), Flits: 5}) {
					injected++
				}
			}
			n.Tick()
		}
		return cycles
	}
	full := run(config.NoCFull)
	conc := run(config.NoCConcentrated)
	if conc < full {
		t.Errorf("concentrated crossbar (%d cycles) should not beat full crossbar (%d cycles)", conc, full)
	}
}

func TestIdealNetUnlimitedBandwidth(t *testing.T) {
	p := testParams(config.NoCIdeal)
	n := MustNew(p, Request)
	for i := 0; i < 1000; i++ {
		if !n.Inject(&Packet{ID: uint64(i), Src: 0, Dst: 0, Flits: 5}) {
			t.Fatal("ideal net must always accept")
		}
	}
	got := drain(t, n, 100)
	if len(got) != 1000 {
		t.Fatalf("delivered %d, want 1000", len(got))
	}
	if n.Stats().AvgLatency() != float64(p.IdealLatency) {
		t.Errorf("ideal latency = %v, want %d", n.Stats().AvgLatency(), p.IdealLatency)
	}
}

func TestStatsAddAndAverages(t *testing.T) {
	a := Stats{Injected: 2, Delivered: 2, TotalLatency: 20, TotalHops: 4, FlitsInjected: 10}
	b := Stats{Injected: 1, Delivered: 1, TotalLatency: 30, TotalHops: 1}
	a.Add(b)
	if a.Injected != 3 || a.TotalLatency != 50 {
		t.Errorf("Add result %+v", a)
	}
	if got := a.AvgLatency(); got < 16.6 || got > 16.7 {
		t.Errorf("AvgLatency = %v, want 50/3", got)
	}
	if got := a.AvgHops(); got < 1.6 || got > 1.7 {
		t.Errorf("AvgHops = %v", got)
	}
	var zero Stats
	if zero.AvgLatency() != 0 || zero.AvgHops() != 0 {
		t.Error("zero stats averages should be 0")
	}
}

func TestDirectionString(t *testing.T) {
	if Request.String() != "request" || Reply.String() != "reply" {
		t.Error("Direction String mismatch")
	}
}
