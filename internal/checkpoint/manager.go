package checkpoint

import (
	"io"
	"sync/atomic"
	"time"

	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/simstore"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Manager stores checkpoints content-addressed in a simstore.Store and
// implements sweep.Checkpointer on top: Resume probes the stored prefixes of
// a spec from the furthest kernel boundary back to the warmup end, Checkpoint
// banks newly passed boundaries. All failures short of "the trace file named
// by the spec is unreadable" degrade to cold execution — checkpointing is an
// accelerator, never a correctness dependency — and corrupt blobs are dropped
// from the store so the next run rewrites them.
//
// A Manager is safe for concurrent use by the sweep worker pool.
type Manager struct {
	store *simstore.Store

	hits   atomic.Uint64
	saves  atomic.Uint64
	bytes  atomic.Uint64
	errors atomic.Uint64

	// Timing instruments, registered by Instrument; nil (no-op) otherwise.
	probeSeconds   *obs.Histogram
	restoreSeconds *obs.Histogram
	saveSeconds    *obs.Histogram

	// onSave, if set via OnSave, fires after every banked snapshot with
	// the blob key and encoded bytes (the cluster replication hook).
	onSave func(key [32]byte, data []byte)
}

// OnSave registers a post-save hook. Set before the manager is handed to
// workers; not safe to change concurrently with running simulations.
func (m *Manager) OnSave(fn func(key [32]byte, data []byte)) { m.onSave = fn }

var (
	_ sweep.Checkpointer        = (*Manager)(nil)
	_ sweep.SpannedCheckpointer = (*Manager)(nil)
)

// NewManager wraps a store with checkpoint semantics.
func NewManager(store *simstore.Store) *Manager {
	return &Manager{store: store}
}

// Stats reports the manager's counters: resumed runs, stored snapshots, blob
// bytes written, and swallowed errors.
type Stats struct {
	Hits   uint64
	Saves  uint64
	Bytes  uint64
	Errors uint64
}

// ManagerStats returns a snapshot of the counters.
func (m *Manager) ManagerStats() Stats {
	return Stats{
		Hits:   m.hits.Load(),
		Saves:  m.saves.Load(),
		Bytes:  m.bytes.Load(),
		Errors: m.errors.Load(),
	}
}

// Instrument registers the manager's timing histograms: how long prefix
// probing, state restoration and snapshot saving take. The hit/save/error
// counters stay in ManagerStats (the server samples them at scrape time).
func (m *Manager) Instrument(reg *obs.Registry) {
	m.probeSeconds = reg.Histogram("simd_checkpoint_probe_seconds",
		"Time spent probing the store for a resumable state prefix.", nil)
	m.restoreSeconds = reg.Histogram("simd_checkpoint_restore_seconds",
		"Time spent decoding and restoring a GPU from a stored snapshot.", nil)
	m.saveSeconds = reg.Histogram("simd_checkpoint_save_seconds",
		"Time spent encoding and storing a GPU state snapshot.", nil)
}

// candidate is one stored prefix a run could resume from.
type candidate struct {
	key      [32]byte
	atKernel int
}

// candidates lists the prefixes of spec, furthest first.
func (m *Manager) candidates(spec sweep.RunSpec) ([]candidate, error) {
	var cands []candidate
	// Kernel boundaries exist only when the kernel count is knowable from
	// the spec alone (trace replays may defer it to the trace header; those
	// runs still share warmup prefixes).
	if kernels := spec.Canonical().Kernels; kernels > 1 {
		for k := kernels - 1; k >= 1; k-- {
			key, err := KernelKey(spec, k)
			if err != nil {
				return nil, err
			}
			cands = append(cands, candidate{key: key, atKernel: k})
		}
	}
	if spec.WarmupCycles > 0 {
		key, err := WarmupKey(spec)
		if err != nil {
			return nil, err
		}
		cands = append(cands, candidate{key: key})
	}
	return cands, nil
}

// Resume implements sweep.Checkpointer.
func (m *Manager) Resume(spec sweep.RunSpec, newProg func() (workload.Program, error)) (*gpu.GPU, workload.Program, int, bool) {
	return m.ResumeSpanned(spec, newProg, nil)
}

// ResumeSpanned implements sweep.SpannedCheckpointer: Resume with the probe
// phase (key derivation + blob lookups) and the restore phase (decode +
// program build + state restoration) recorded as distinct child spans of sp
// and observed into the timing histograms. A nil sp records no spans.
func (m *Manager) ResumeSpanned(spec sweep.RunSpec, newProg func() (workload.Program, error), sp *obs.Span) (*gpu.GPU, workload.Program, int, bool) {
	probeStart := time.Now()
	probe := sp.Child("checkpoint-probe")
	probeEnded := false
	endProbe := func(hit bool) {
		if probeEnded {
			return
		}
		probeEnded = true
		probe.Annotate("hit", hit)
		probe.End()
		m.probeSeconds.ObserveSince(probeStart)
	}

	cands, err := m.candidates(spec)
	if err != nil {
		// The spec's trace file is unreadable; the cold path will surface
		// the same error to the caller.
		m.errors.Add(1)
		endProbe(false)
		return nil, nil, 0, false
	}
	for _, c := range cands {
		data, ok := m.store.GetBlob(c.key)
		if !ok {
			continue
		}
		snap, err := Decode(data)
		if err != nil {
			// Corrupt or truncated blob: self-heal and keep probing shorter
			// prefixes.
			m.store.DropBlob(c.key)
			m.errors.Add(1)
			continue
		}
		// A decodable snapshot commits us to the restore phase.
		probe.Annotate("at_kernel", c.atKernel)
		endProbe(true)
		restoreStart := time.Now()
		restore := sp.Child("checkpoint-restore")
		restore.Annotate("at_kernel", c.atKernel)
		prog, err := newProg()
		if err != nil {
			m.errors.Add(1)
			restore.Annotate("error", err.Error())
			restore.End()
			m.restoreSeconds.ObserveSince(restoreStart)
			return nil, nil, 0, false
		}
		g, err := Restore(spec.Config, prog, snap)
		if err != nil {
			// A decodable snapshot that does not fit the freshly built run
			// (stale geometry under a key collision, a partially restored
			// program) is as corrupt as an unparsable one.
			if closer, ok := prog.(io.Closer); ok {
				closer.Close()
			}
			m.store.DropBlob(c.key)
			m.errors.Add(1)
			restore.Annotate("error", err.Error())
			restore.End()
			m.restoreSeconds.ObserveSince(restoreStart)
			continue
		}
		m.hits.Add(1)
		restore.End()
		m.restoreSeconds.ObserveSince(restoreStart)
		return g, prog, c.atKernel, true
	}
	endProbe(false)
	return nil, nil, 0, false
}

// Checkpoint implements sweep.Checkpointer.
func (m *Manager) Checkpoint(spec sweep.RunSpec, g *gpu.GPU, atKernel int) {
	var (
		key [32]byte
		err error
	)
	if atKernel == 0 {
		key, err = WarmupKey(spec)
	} else {
		key, err = KernelKey(spec, atKernel)
	}
	if err != nil {
		m.errors.Add(1)
		return
	}
	// Deterministic execution means an existing blob under this key is
	// byte-equivalent state; skip the save (and its gob+gzip cost).
	if m.store.HasBlob(key) {
		return
	}
	saveStart := time.Now()
	defer func() { m.saveSeconds.ObserveSince(saveStart) }()
	snap, err := Save(g)
	if err != nil {
		m.errors.Add(1)
		return
	}
	snap.Header.Key = spec.Key
	snap.Header.AtKernel = atKernel
	data, err := Encode(snap)
	if err != nil {
		m.errors.Add(1)
		return
	}
	if err := m.store.PutBlob(key, data); err != nil {
		m.errors.Add(1)
		return
	}
	m.saves.Add(1)
	m.bytes.Add(uint64(len(data)))
	if m.onSave != nil {
		m.onSave(key, data)
	}
}
