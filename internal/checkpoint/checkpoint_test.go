package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/simstore"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// microCfg is the fuzzer's micro GPU (see scenario.MicroConfig): the smallest
// structurally complete machine, so whole-sweep round-trips stay fast.
func microCfg(mode config.LLCMode) config.Config {
	cfg := config.Baseline()
	cfg.NumSMs = 4
	cfg.NumClusters = 2
	cfg.MaxWarpsPerSM = 4
	cfg.MaxCTAsPerSM = 2
	cfg.SchedulersPerSM = 1
	cfg.NumMemControllers = 2
	cfg.LLCSlicesPerMC = 2
	cfg.LLCSliceBytes = 8 * 1024
	cfg.L1SizeBytes = 6 * 1024
	cfg.L1MSHRs = 4
	cfg.LLCMSHRsPerSlice = 4
	cfg.ATDSampledSets = 4
	cfg.ProfileWindowCycles = 200
	cfg.LLCMode = mode
	return cfg
}

func benchSpec(t *testing.T, abbr string, kernels int) workload.Spec {
	t.Helper()
	s, ok := workload.ByAbbr(abbr)
	if !ok {
		t.Fatalf("unknown benchmark %s", abbr)
	}
	s.Kernels = kernels
	return s
}

func genRunSpec(t *testing.T, mode config.LLCMode) sweep.RunSpec {
	return sweep.RunSpec{
		Key:           "checkpoint-test",
		Workloads:     []workload.Spec{benchSpec(t, "BP", 3)},
		Config:        microCfg(mode),
		Seed:          11,
		MeasureCycles: 6_000,
		WarmupCycles:  2_000,
		Kernels:       3,
	}
}

func newManager(t *testing.T) (*Manager, *simstore.Store) {
	t.Helper()
	store, err := simstore.Open(t.TempDir(), simstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(store), store
}

func requireEqualStats(t *testing.T, want, got gpu.RunStats, what string) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: statistics differ from cold run\ncold: %+v\ngot:  %+v", what, want, got)
	}
}

// blobPath locates a checkpoint blob inside a store directory (the tests
// corrupt files directly, as an external process or disk fault would).
func blobPath(dir string, key [32]byte) string {
	hex := simstore.Hex(key)
	return filepath.Join(dir, hex[:2], hex+".ckpt")
}

// TestSweepResumeByteIdentical is the subsystem's round-trip gate at the
// sweep.Execute level: a run that populates the checkpoint store, a re-run
// that resumes from the furthest kernel boundary, and a longer run that
// resumes from the shared warmup prefix must all report statistics
// byte-identical to cold execution.
func TestSweepResumeByteIdentical(t *testing.T) {
	variants := []struct {
		name string
		spec func(t *testing.T) sweep.RunSpec
	}{
		{"shared", func(t *testing.T) sweep.RunSpec { return genRunSpec(t, config.LLCShared) }},
		{"private", func(t *testing.T) sweep.RunSpec { return genRunSpec(t, config.LLCPrivate) }},
		{"adaptive", func(t *testing.T) sweep.RunSpec { return genRunSpec(t, config.LLCAdaptive) }},
		{"multiprogram-per-app", func(t *testing.T) sweep.RunSpec {
			s := genRunSpec(t, config.LLCShared)
			s.Workloads = []workload.Spec{benchSpec(t, "BP", 3), benchSpec(t, "VA", 3)}
			s.AppModes = []config.LLCMode{config.LLCShared, config.LLCPrivate}
			return s
		}},
		{"trace-replay", func(t *testing.T) sweep.RunSpec {
			rec := genRunSpec(t, config.LLCShared)
			rec.RecordPath = filepath.Join(t.TempDir(), "bp.trace")
			if _, err := sweep.Execute(rec); err != nil {
				t.Fatal(err)
			}
			s := rec
			s.Workloads = nil
			s.RecordPath = ""
			s.TracePath = rec.RecordPath
			return s
		}},
	}

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			spec := v.spec(t)
			cold, err := sweep.Execute(spec)
			if err != nil {
				t.Fatal(err)
			}

			mgr, store := newManager(t)
			spec.Checkpoint = true

			first, err := sweep.ExecuteWith(spec, mgr)
			if err != nil {
				t.Fatal(err)
			}
			requireEqualStats(t, cold, first, "populating run")
			st := mgr.ManagerStats()
			if st.Hits != 0 || st.Saves != 3 || st.Errors != 0 {
				t.Fatalf("populating run: stats %+v, want 0 hits, 3 saves, 0 errors", st)
			}
			if ss := store.StoreStats(); ss.Blobs != 3 || ss.TotalBytes == 0 {
				t.Fatalf("store holds %d blobs / %d bytes, want 3 blobs", ss.Blobs, ss.TotalBytes)
			}

			second, err := sweep.ExecuteWith(spec, mgr)
			if err != nil {
				t.Fatal(err)
			}
			requireEqualStats(t, cold, second, "kernel-boundary resume")
			if st := mgr.ManagerStats(); st.Hits != 1 || st.Errors != 0 {
				t.Fatalf("resumed run: stats %+v, want 1 hit, 0 errors", st)
			}

			// A longer measurement shares only the warmup prefix.
			longer := spec
			longer.MeasureCycles = spec.MeasureCycles + 3_000
			longerCold := longer
			longerCold.Checkpoint = false
			cold2, err := sweep.Execute(longerCold)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := sweep.ExecuteWith(longer, mgr)
			if err != nil {
				t.Fatal(err)
			}
			requireEqualStats(t, cold2, warm, "warmup-prefix resume")
			if st := mgr.ManagerStats(); st.Hits != 2 || st.Errors != 0 {
				t.Fatalf("warmup resume: stats %+v, want 2 hits, 0 errors", st)
			}
		})
	}
}

// TestCorruptBlobSelfHeals covers the satellite requirement: a truncated or
// garbage checkpoint blob is skipped and deleted, the run falls back to a
// shorter prefix (or cold execution) with identical statistics, and the blob
// is re-banked as the run passes the boundary again.
func TestCorruptBlobSelfHeals(t *testing.T) {
	corruptions := []struct {
		name    string
		mangle  func(data []byte) []byte
		corrupt int // store-level corrupt count per healed blob
	}{
		{"truncated", func(data []byte) []byte { return data[:len(data)/2] }, 1},
		{"garbage", func(data []byte) []byte { return bytes.Repeat([]byte("junk"), 64) }, 1},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			spec := genRunSpec(t, config.LLCAdaptive)
			cold, err := sweep.Execute(spec)
			if err != nil {
				t.Fatal(err)
			}
			mgr, store := newManager(t)
			spec.Checkpoint = true
			if _, err := sweep.ExecuteWith(spec, mgr); err != nil {
				t.Fatal(err)
			}

			// Mangle the furthest boundary's blob on disk.
			key, err := KernelKey(spec, 2)
			if err != nil {
				t.Fatal(err)
			}
			path := blobPath(store.Dir(), key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("expected blob at %s: %v", path, err)
			}
			if err := os.WriteFile(path, c.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			resumed, err := sweep.ExecuteWith(spec, mgr)
			if err != nil {
				t.Fatal(err)
			}
			requireEqualStats(t, cold, resumed, "resume past corrupt blob")
			st := mgr.ManagerStats()
			if st.Errors == 0 {
				t.Error("corrupt blob was not detected")
			}
			if st.Hits != 1 {
				t.Errorf("expected the fallback prefix to hit, got %d hits", st.Hits)
			}
			if ss := store.StoreStats(); ss.Corrupt == 0 {
				t.Error("store did not count the dropped blob as corrupt")
			}
			// Passing boundary 2 again re-banked the healed blob.
			if !store.HasBlob(key) {
				t.Error("corrupt blob was not re-banked by the resumed run")
			}
		})
	}
}

// TestRecordingDisablesCheckpointing: a resumed run cannot re-record its
// skipped prefix, so trace capture forces cold execution.
func TestRecordingDisablesCheckpointing(t *testing.T) {
	spec := genRunSpec(t, config.LLCShared)
	mgr, _ := newManager(t)
	spec.Checkpoint = true
	if _, err := sweep.ExecuteWith(spec, mgr); err != nil { // populate
		t.Fatal(err)
	}
	rec := spec
	rec.RecordPath = filepath.Join(t.TempDir(), "rec.trace")
	if _, err := sweep.ExecuteWith(rec, mgr); err != nil {
		t.Fatal(err)
	}
	if st := mgr.ManagerStats(); st.Hits != 0 {
		t.Fatalf("recording run resumed from a checkpoint (%d hits): the trace is partial", st.Hits)
	}
	// The capture must be complete: replaying it reproduces the recording.
	replay := sweep.RunSpec{
		Key: "replay", TracePath: rec.RecordPath, Config: rec.Config,
		MeasureCycles: rec.MeasureCycles, WarmupCycles: rec.WarmupCycles, Kernels: rec.Kernels,
	}
	recCold := rec
	recCold.RecordPath = ""
	recCold.Checkpoint = false
	want, err := sweep.Execute(recCold)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sweep.Execute(replay)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualStats(t, want, got, "replay of trace captured alongside checkpointing")
}

// TestEncodeDecodeHeader pins the self-describing container: ReadHeader
// parses the preamble without the payload, Decode round-trips the state, and
// malformed inputs are rejected.
func TestEncodeDecodeHeader(t *testing.T) {
	spec := benchSpec(t, "VA", 1)
	cfg := microCfg(config.LLCShared)
	g, err := gpu.New(cfg, workload.MustNewGenerator(spec, cfg, 3))
	if err != nil {
		t.Fatal(err)
	}
	g.Warmup(500)
	snap, err := Save(g)
	if err != nil {
		t.Fatal(err)
	}
	snap.Header.Key = "va/test"
	snap.Header.AtKernel = 0
	data, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}

	hdr, err := ReadHeader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != FormatVersion || hdr.SimVersion != simstore.SimVersion ||
		hdr.Key != "va/test" || hdr.Cycle != 500 {
		t.Errorf("header round-trip mismatch: %+v", hdr)
	}

	// Gob legitimately drops zero-valued fields (an empty slice decodes as
	// nil), so the fidelity check is behavioural: a GPU restored from the
	// decoded state must run identically to the original.
	decoded, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(cfg, workload.MustNewGenerator(spec, cfg, 3), decoded)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualStats(t, g.Run(2_000, 1), restored.Run(2_000, 1), "run after decode+restore")

	if _, err := Decode([]byte("not a checkpoint\n{}\n")); err == nil {
		t.Error("bad magic must be rejected")
	}
	if _, err := Decode(data[:len(data)-10]); err == nil {
		t.Error("truncated payload must be rejected")
	}
}

// TestPrefixKeys pins the key derivation semantics: warmup keys ignore
// measure-window knobs but track everything that shapes the warmup; kernel
// keys track the full spec.
func TestPrefixKeys(t *testing.T) {
	base := genRunSpec(t, config.LLCShared)
	wk := func(s sweep.RunSpec) [32]byte {
		k, err := WarmupKey(s)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	same := base
	same.MeasureCycles *= 7
	same.Kernels = 1
	same.Key = "renamed"
	same.Checkpoint = true
	if wk(base) != wk(same) {
		t.Error("warmup key must ignore measurement window, kernel count, naming and the checkpoint flag")
	}

	for name, mutate := range map[string]func(*sweep.RunSpec){
		"seed":   func(s *sweep.RunSpec) { s.Seed++ },
		"warmup": func(s *sweep.RunSpec) { s.WarmupCycles++ },
		"config": func(s *sweep.RunSpec) { s.Config.NumSMs *= 2 },
		"appmodes": func(s *sweep.RunSpec) {
			s.Workloads = append(s.Workloads, s.Workloads[0])
			s.AppModes = []config.LLCMode{config.LLCShared, config.LLCPrivate}
		},
	} {
		mutated := base
		mutate(&mutated)
		if wk(base) == wk(mutated) {
			t.Errorf("warmup key must change with %s", name)
		}
	}

	k1, err := KernelKey(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KernelKey(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("kernel keys must differ per boundary")
	}
	longer := base
	longer.MeasureCycles *= 2
	l1, err := KernelKey(longer, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l1 == k1 {
		t.Error("kernel keys must track the boundary schedule (measure cycles)")
	}
	if wu := wk(base); wu == k1 {
		t.Error("warmup and kernel namespaces must be disjoint")
	}
}
