package checkpoint

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/simstore"
	"repro/internal/sweep"
)

// Prefix fingerprints address checkpoints by what determines execution *up
// to* the snapshot point, so runs that diverge only afterwards share them.
//
// The warmup prefix of a run depends on the workload (specs or trace
// content), configuration, per-app modes, seed and warmup length — but not on
// the measurement window: Warmup never fires a kernel boundary (its internal
// kernel count is 1) and measurement starts from zero afterwards. WarmupKey
// therefore fingerprints the spec with MeasureCycles zeroed and Kernels
// pinned to 1, erasing exactly the measure-window knobs. (Kernels is pinned
// rather than zeroed because Canonical resolves a zero Kernels from the
// workloads — two specs differing only in Kernels must still share a warmup
// key.)
//
// A kernel-boundary prefix additionally depends on the boundary schedule,
// which MeasureCycles and Kernels define — so KernelKey derives from the full
// run fingerprint plus the boundary ordinal.
//
// Both keys inherit the simstore salts (SchemaVersion, SimVersion) through
// simstore.Fingerprint, so any simulator behaviour change that invalidates
// cached results invalidates checkpoints with it; the derivation strings
// below additionally keep checkpoint keys disjoint from result fingerprints
// (and .ckpt vs .json storage namespaces make a collision harmless anyway).

// WarmupKey returns the content address of the run's state at warmup end.
// Specs that provably execute identical warmups map to the same key.
func WarmupKey(spec sweep.RunSpec) ([32]byte, error) {
	c := spec.Canonical()
	c.MeasureCycles = 0
	c.Kernels = 1
	fp, err := simstore.Fingerprint(c)
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256([]byte("repro-checkpoint/warmup|" + simstore.Hex(fp))), nil
}

// KernelKey returns the content address of the run's state at its m-th
// kernel boundary (m >= 1).
func KernelKey(spec sweep.RunSpec, m int) ([32]byte, error) {
	fp, err := simstore.Fingerprint(spec)
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(fmt.Appendf(nil, "repro-checkpoint/kernel|%s|%d", simstore.Hex(fp), m)), nil
}
