// Package checkpoint snapshots complete GPU simulation state so sweeps can
// resume from shared prefixes instead of re-simulating them.
//
// The simulator is deterministic and single-threaded, which makes a snapshot
// meaningful: a GPU restored from a checkpoint produces the byte-identical
// remainder of the run (the round-trip tests in internal/gpu and here prove
// it). Sweeps exploit that through two prefix classes:
//
//   - the warmup prefix — every run that shares workload, configuration,
//     seed (or trace content) and warmup length executes identical cycles up
//     to warmup end, regardless of its measurement window; a Figure-11-style
//     sweep whose points differ only in measure-window knobs re-simulates the
//     warmup once instead of per point;
//   - kernel-boundary prefixes — re-running the same spec (after a crash, a
//     store eviction of the result record, or with checkpointing newly
//     enabled) resumes from the furthest banked boundary.
//
// Snapshots are stored content-addressed in an internal/simstore Store, next
// to result records and under the same LRU; keys are prefix fingerprints
// derived from the simstore spec fingerprint (see keys.go). The Manager type
// glues it together behind sweep.Checkpointer.
package checkpoint

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/simstore"
	"repro/internal/workload"
)

// FormatVersion versions the snapshot container (magic line, header, payload
// encoding). Snapshots with a different version are rejected on decode.
const FormatVersion = 1

// magic is the first line of every checkpoint file. It embeds the format
// version, so a reader knows immediately whether it can parse the rest.
const magic = "repro-checkpoint/1"

// Header is the self-describing, uncompressed preamble of a snapshot: one
// JSON line a tool can read without decoding the (gzip+gob) state payload.
type Header struct {
	Version    int    `json:"version"`
	SimVersion string `json:"sim_version"`
	// Key names the run the snapshot was taken from (informational, like
	// simstore.Record.Key).
	Key string `json:"key,omitempty"`
	// Cycle is the simulated cycle the snapshot was taken at; AtKernel the
	// kernel boundary (0 = warmup end).
	Cycle       uint64 `json:"cycle"`
	AtKernel    int    `json:"at_kernel"`
	SavedAtUnix int64  `json:"saved_at_unix"`
}

// Snapshot is a decoded checkpoint: the descriptor plus the complete GPU
// state.
type Snapshot struct {
	Header Header
	State  gpu.State
}

// Save captures the complete state of g as a snapshot. It fails if the
// workload program driving g does not support checkpointing (every program in
// this repository does).
func Save(g *gpu.GPU) (*Snapshot, error) {
	st, err := g.SaveState()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Snapshot{
		Header: Header{
			Version:     FormatVersion,
			SimVersion:  simstore.SimVersion,
			Cycle:       st.Cycle,
			SavedAtUnix: time.Now().Unix(),
		},
		State: st,
	}, nil
}

// Restore builds a GPU from cfg and prog — which must be freshly constructed
// from the same inputs as the checkpointed run — and restores the snapshot
// onto it. The returned GPU continues the run exactly where the snapshot left
// it; resumed statistics are byte-identical to the uninterrupted run's.
func Restore(cfg config.Config, prog workload.Program, snap *Snapshot) (*gpu.GPU, error) {
	if snap.Header.Version != FormatVersion {
		return nil, fmt.Errorf("checkpoint: snapshot format v%d, this simulator reads v%d", snap.Header.Version, FormatVersion)
	}
	g, err := gpu.Restore(cfg, prog, snap.State)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return g, nil
}

// Encode serializes a snapshot: the magic line, the JSON header line, then
// the gob-encoded GPU state compressed with gzip. The two text lines make a
// checkpoint file self-describing (`checkpointtool info` reads them alone);
// gob handles the deeply nested state struct without per-field code; gzip
// wins back most of gob's verbosity on the large cache arrays.
func Encode(snap *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.WriteByte('\n')
	hdr, err := json.Marshal(snap.Header)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode header: %w", err)
	}
	buf.Write(hdr)
	buf.WriteByte('\n')
	zw := gzip.NewWriter(&buf)
	if err := gob.NewEncoder(zw).Encode(snap.State); err != nil {
		return nil, fmt.Errorf("checkpoint: encode state: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("checkpoint: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// ReadHeader parses the self-describing preamble of a checkpoint stream
// without touching the state payload.
func ReadHeader(r io.Reader) (Header, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return Header{}, fmt.Errorf("checkpoint: read magic: %w", err)
	}
	if strings.TrimSuffix(line, "\n") != magic {
		return Header{}, fmt.Errorf("checkpoint: bad magic %q (not a checkpoint file?)", strings.TrimSpace(line))
	}
	hdrLine, err := br.ReadString('\n')
	if err != nil {
		return Header{}, fmt.Errorf("checkpoint: read header: %w", err)
	}
	var hdr Header
	if err := json.Unmarshal([]byte(hdrLine), &hdr); err != nil {
		return Header{}, fmt.Errorf("checkpoint: parse header: %w", err)
	}
	if hdr.Version != FormatVersion {
		return Header{}, fmt.Errorf("checkpoint: snapshot format v%d, this simulator reads v%d", hdr.Version, FormatVersion)
	}
	return hdr, nil
}

// Decode parses an encoded snapshot. Any malformation — bad magic, version
// skew, truncated or corrupted payload — is an error; callers holding the
// blob in a store drop it and fall back to cold execution.
func Decode(data []byte) (*Snapshot, error) {
	r := bytes.NewReader(data)
	hdr, err := ReadHeader(r)
	if err != nil {
		return nil, err
	}
	// ReadHeader consumed through its bufio wrapper; re-locate the payload by
	// scanning past the two text lines directly.
	payload := data
	for i := 0; i < 2; i++ {
		nl := bytes.IndexByte(payload, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("checkpoint: truncated preamble")
		}
		payload = payload[nl+1:]
	}
	zr, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decode state: %w", err)
	}
	snap := &Snapshot{Header: hdr}
	if err := gob.NewDecoder(zr).Decode(&snap.State); err != nil {
		return nil, fmt.Errorf("checkpoint: decode state: %w", err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("checkpoint: decode state: %w", err)
	}
	return snap, nil
}
