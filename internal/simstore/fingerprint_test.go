package simstore

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/sweep"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite testdata/fingerprints.golden")

// goldenSpecs are representative runs whose fingerprints are pinned in
// testdata/fingerprints.golden. If this test fails after an intentional
// change to the fingerprint inputs (RunSpec/Config/workload.Spec fields, the
// canonical encoding, or a salt bump), regenerate with
//
//	go test ./internal/simstore -run TestGoldenFingerprints -update
//
// and say so in the commit: every previously cached result is invalidated.
func goldenSpecs() map[string]sweep.RunSpec {
	va, _ := workload.ByAbbr("VA")
	gemm, _ := workload.ByAbbr("GEMM")
	an, _ := workload.ByAbbr("AN")
	lud, _ := workload.ByAbbr("LUD")

	shared := config.Baseline()
	adaptive := config.Baseline()
	adaptive.LLCMode = config.LLCAdaptive
	adaptive.ProfileWindowCycles = 2_000

	return map[string]sweep.RunSpec{
		"va-shared-default": {
			Workloads:     []workload.Spec{va},
			Config:        shared,
			Seed:          1,
			MeasureCycles: 20_000,
			WarmupCycles:  8_000,
		},
		"gemm-adaptive": {
			Workloads:     []workload.Spec{gemm},
			Config:        adaptive,
			Seed:          3,
			MeasureCycles: 60_000,
			WarmupCycles:  20_000,
		},
		"multiprogram-appmodes": {
			Workloads:     []workload.Spec{an, lud},
			Config:        adaptive,
			AppModes:      []config.LLCMode{config.LLCPrivate, config.LLCShared},
			Seed:          1,
			MeasureCycles: 20_000,
		},
	}
}

func TestGoldenFingerprints(t *testing.T) {
	golden := filepath.Join("testdata", "fingerprints.golden")
	specs := goldenSpecs()

	if *update {
		names := make([]string, 0, len(specs))
		for n := range specs {
			names = append(names, n)
		}
		// Deterministic file order.
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
		var b strings.Builder
		for _, n := range names {
			fp, err := Fingerprint(specs[n])
			if err != nil {
				t.Fatalf("fingerprint %s: %v", n, err)
			}
			fmt.Fprintf(&b, "%s %s\n", n, Hex(fp))
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}

	f, err := os.Open(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	defer f.Close()
	seen := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, wantHex, ok := strings.Cut(strings.TrimSpace(sc.Text()), " ")
		if !ok {
			t.Fatalf("malformed golden line %q", sc.Text())
		}
		spec, ok := specs[name]
		if !ok {
			t.Errorf("golden entry %q has no spec (stale golden file?)", name)
			continue
		}
		seen++
		fp, err := Fingerprint(spec)
		if err != nil {
			t.Fatalf("fingerprint %s: %v", name, err)
		}
		if got := Hex(fp); got != wantHex {
			t.Errorf("fingerprint of %s changed:\n  golden %s\n  got    %s\n"+
				"an intentional hash-breaking change must bump simstore.SimVersion and regenerate the golden file (-update)",
				name, wantHex, got)
		}
	}
	if seen != len(specs) {
		t.Errorf("golden file covers %d/%d specs; regenerate with -update", seen, len(specs))
	}
}

// TestFingerprintInsensitivity: differences that cannot change simulated
// statistics must not change the fingerprint.
func TestFingerprintInsensitivity(t *testing.T) {
	base := goldenSpecs()["va-shared-default"]

	a := base
	a.Key = "some-name"
	a.RecordPath = "capture.trace"

	b := base
	b.Key = "another-name"
	b.Kernels = base.Workloads[0].Kernels // explicit default
	b.Config = b.Config.Normalize()       // derived fields spelled out
	b.Config.Shards = 8                   // host-side execution knob, byte-identical stats

	fpA, err := Fingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := Fingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpB {
		t.Errorf("Key/RecordPath/explicit-default differences changed the fingerprint:\n%s\n%s",
			Hex(fpA), Hex(fpB))
	}
}

// TestFingerprintSensitivity: every semantically meaningful change must move
// the digest.
func TestFingerprintSensitivity(t *testing.T) {
	base := goldenSpecs()["va-shared-default"]
	fpBase, err := Fingerprint(base)
	if err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func(*sweep.RunSpec){
		"seed":    func(s *sweep.RunSpec) { s.Seed++ },
		"cycles":  func(s *sweep.RunSpec) { s.MeasureCycles++ },
		"warmup":  func(s *sweep.RunSpec) { s.WarmupCycles++ },
		"kernels": func(s *sweep.RunSpec) { s.Kernels = 5 },
		"mode":    func(s *sweep.RunSpec) { s.Config.LLCMode = config.LLCPrivate },
		"l1-size": func(s *sweep.RunSpec) { s.Config.L1SizeBytes *= 2 },
		"workload": func(s *sweep.RunSpec) {
			w, _ := workload.ByAbbr("MM")
			s.Workloads = []workload.Spec{w}
		},
	}
	for name, mutate := range mutations {
		s := base
		s.Workloads = append([]workload.Spec(nil), base.Workloads...)
		mutate(&s)
		fp, err := Fingerprint(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp == fpBase {
			t.Errorf("mutation %q did not change the fingerprint", name)
		}
	}
}

// TestFingerprintTraceContent: trace replays are addressed by trace content,
// not path.
func TestFingerprintTraceContent(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.trace")
	pathB := filepath.Join(dir, "renamed.trace")
	pathC := filepath.Join(dir, "edited.trace")
	if err := os.WriteFile(pathA, []byte("trace-bytes-1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pathB, []byte("trace-bytes-1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pathC, []byte("trace-bytes-2"), 0o644); err != nil {
		t.Fatal(err)
	}

	spec := func(path string) sweep.RunSpec {
		return sweep.RunSpec{TracePath: path, Config: config.Baseline(), MeasureCycles: 1_000}
	}
	fpA, err := Fingerprint(spec(pathA))
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := Fingerprint(spec(pathB))
	if err != nil {
		t.Fatal(err)
	}
	fpC, err := Fingerprint(spec(pathC))
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpB {
		t.Error("same trace content under different paths fingerprinted differently")
	}
	if fpA == fpC {
		t.Error("different trace content fingerprinted identically")
	}
	if _, err := Fingerprint(spec(filepath.Join(dir, "missing.trace"))); err == nil {
		t.Error("missing trace file must fail the fingerprint, not silently hash the path")
	}
}
