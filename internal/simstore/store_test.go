package simstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// sampleStats exercises the awkward corners of gpu.RunStats serialization:
// float precision, integer-keyed maps, slices and nil-able pointers.
func sampleStats(seed uint64) gpu.RunStats {
	return gpu.RunStats{
		Cycles:              20_000 + seed,
		Instructions:        123_456_789 + seed,
		IPC:                 0.1 + float64(seed)/3.0,
		AppInstructions:     []uint64{seed, seed * 2},
		AppIPC:              []float64{1.5, 2.25},
		LLCPerSliceAccesses: []uint64{1, 2, 3},
		LLCMissRate:         1.0 / 3.0,
		SharingHistogram:    [4]float64{0.25, 0.25, 0.125, 0.375},
		FinalMode:           config.LLCPrivate,
		ModeCycles: map[config.LLCMode]uint64{
			config.LLCShared:  seed,
			config.LLCPrivate: seed * 7,
		},
		KernelBoundaries: []uint64{5_000, 10_000},
	}
}

func specFor(t *testing.T, abbr string, seed int64) sweep.RunSpec {
	t.Helper()
	w, ok := workload.ByAbbr(abbr)
	if !ok {
		t.Fatalf("no workload %s", abbr)
	}
	return sweep.RunSpec{
		Workloads:     []workload.Spec{w},
		Config:        config.Baseline(),
		Seed:          seed,
		MeasureCycles: 10_000,
	}
}

func mustFP(t *testing.T, s sweep.RunSpec) [32]byte {
	t.Helper()
	fp, err := Fingerprint(s)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}

	spec := specFor(t, "VA", 1)
	fp := mustFP(t, spec)
	if _, ok := st.Get(fp); ok {
		t.Fatal("empty store returned a record")
	}
	stats := sampleStats(3)
	if err := st.Put(fp, "va-run", spec, stats); err != nil {
		t.Fatal(err)
	}

	rec, ok := st.Get(fp)
	if !ok {
		t.Fatal("stored record not found")
	}
	if !reflect.DeepEqual(rec.Stats, stats) {
		t.Errorf("stats did not round-trip:\nput %+v\ngot %+v", stats, rec.Stats)
	}
	// The JSON forms must be byte-identical too — this is what lets simd
	// serve a cached response indistinguishable from the original one.
	a, _ := json.Marshal(stats)
	b, _ := json.Marshal(rec.Stats)
	if string(a) != string(b) {
		t.Errorf("stats JSON not byte-identical after round-trip:\n%s\n%s", a, b)
	}

	// A second Open over the same directory must see the record (persistence).
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 1 {
		t.Fatalf("reopened store has %d entries, want 1", st2.Len())
	}
	if _, ok := st2.Get(fp); !ok {
		t.Error("record lost across reopen")
	}

	s := st.StoreStats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 {
		t.Errorf("counters = %+v, want 1 hit / 1 miss / 1 put", s)
	}
}

func TestStoreEviction(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}

	fpA := mustFP(t, specFor(t, "VA", 1))
	fpB := mustFP(t, specFor(t, "VA", 2))
	fpC := mustFP(t, specFor(t, "VA", 3))
	for i, fp := range [][32]byte{fpA, fpB} {
		if err := st.Put(fp, "", specFor(t, "VA", int64(i+1)), sampleStats(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch A so B becomes the least recently used, then insert C.
	if _, ok := st.Get(fpA); !ok {
		t.Fatal("A missing before eviction")
	}
	if err := st.Put(fpC, "", specFor(t, "VA", 3), sampleStats(9)); err != nil {
		t.Fatal(err)
	}

	if _, ok := st.Get(fpB); ok {
		t.Error("LRU record B survived eviction")
	}
	if _, ok := st.Get(fpA); !ok {
		t.Error("recently-used record A was evicted")
	}
	if _, ok := st.Get(fpC); !ok {
		t.Error("new record C missing")
	}
	if st.Len() != 2 {
		t.Errorf("store holds %d entries, want 2", st.Len())
	}
	if got := st.StoreStats().Evictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// The bound holds on disk too, not just in the index.
	files, err := filepath.Glob(filepath.Join(dir, "*", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Errorf("%d record files on disk, want 2: %v", len(files), files)
	}
}

// TestEvictionRacesGet hammers Get on a hot record while concurrent Puts
// force LRU evictions through the same store (run with -race): an eviction
// must never corrupt a read in flight — every hit returns the exact stats
// that were stored, and a miss is a clean miss, never a half-read record.
func TestEvictionRacesGet(t *testing.T) {
	st, err := Open(t.TempDir(), Options{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	hotSpec := specFor(t, "VA", 1000)
	hotFP := mustFP(t, hotSpec)
	hotStats := sampleStats(77)
	if err := st.Put(hotFP, "hot", hotSpec, hotStats); err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(hotStats)

	done := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			spec := specFor(t, "VA", int64(i))
			if err := st.Put(mustFP(t, spec), "churn", spec, sampleStats(uint64(i))); err != nil {
				errc <- err
				return
			}
		}
	}()

	hits := 0
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		rec, ok := st.Get(hotFP)
		if !ok {
			// Evicted by the churn: legal. Reinstate and keep going.
			if err := st.Put(hotFP, "hot", hotSpec, hotStats); err != nil {
				t.Fatal(err)
			}
			continue
		}
		hits++
		got, _ := json.Marshal(rec.Stats)
		if string(got) != string(want) {
			t.Fatalf("concurrent eviction corrupted a read:\ngot  %s\nwant %s", got, want)
		}
	}
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if hits == 0 {
		t.Error("reader never hit the hot record; race not exercised")
	}
	if st.Len() > 4 {
		t.Errorf("store holds %d entries, want <= 4", st.Len())
	}
}

func TestStoreCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := specFor(t, "VA", 1)
	fp := mustFP(t, spec)
	if err := st.Put(fp, "", spec, sampleStats(1)); err != nil {
		t.Fatal(err)
	}

	// Truncate the record behind the store's back.
	path := filepath.Join(dir, Hex(fp)[:2], Hex(fp)+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := st.Get(fp); ok {
		t.Fatal("corrupt record served as a hit")
	}
	if got := st.StoreStats().Corrupt; got != 1 {
		t.Errorf("corrupt counter = %d, want 1", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt record file not removed")
	}
	// The store recovers: the same fingerprint can be stored again.
	if err := st.Put(fp, "", spec, sampleStats(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(fp); !ok {
		t.Error("store did not recover after corruption")
	}

	// A version-skewed record is likewise a miss, not a misread.
	var rec Record
	data, _ := os.ReadFile(path)
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	rec.Version = RecordVersion + 1
	skewed, _ := json.Marshal(rec)
	if err := os.WriteFile(path, skewed, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(fp); ok {
		t.Error("version-skewed record served as a hit")
	}
}
