// Package simstore provides content-addressed caching of simulation results.
//
// The simulator is deterministic: equal sweep.RunSpec values always produce
// identical gpu.RunStats (the trace-replay golden tests and the sweep
// engine's parallel-vs-serial identity test prove it). That turns every
// completed run into a reusable artifact: fingerprint the spec, store the
// statistics under the fingerprint, and any future request for the same run
// is a cache hit that skips the simulation entirely.
//
// Two pieces implement this. Fingerprint maps a RunSpec to a stable 32-byte
// digest over a canonical encoding — insensitive to field ordering,
// unset-vs-default spelling, and run naming, but sensitive to everything
// that can change the simulated statistics (including the *content* of a
// replayed trace file, and a simulator version salt; see DESIGN.md for the
// invalidation rule). Store is an on-disk, LRU-bounded, corruption-tolerant
// map from fingerprint to a versioned JSON result record with atomic writes.
package simstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"strconv"

	"repro/internal/sweep"
)

// SchemaVersion versions the canonical fingerprint encoding itself. Bump it
// when the encoding below changes shape (it is mixed into every digest, so a
// bump invalidates all stored results).
const SchemaVersion = 1

// SimVersion is the simulator behaviour salt mixed into every fingerprint.
//
// Invalidation rule: bump this string whenever a change anywhere in the
// simulator alters the statistics produced for some RunSpec — the same class
// of change that requires regenerating the golden trace statistics under
// internal/trace/testdata. Results cached under the old salt then simply
// stop being found, rather than being served stale. Pure refactors,
// performance work and new opt-in features keep the salt (and the golden
// stats) unchanged.
const SimVersion = "repro-sim/1"

// Fingerprint returns the content address of a run: a SHA-256 digest of the
// spec's canonical encoding. Specs that provably produce identical RunStats
// map to the same fingerprint:
//
//   - sweep.RunSpec.Canonical() first erases run naming (Key), side-effect
//     fields (RecordPath) and unset-vs-default differences;
//   - struct fields are encoded name-tagged and name-sorted, so declaration
//     order and added-later zero-valued fields do not shift the digest;
//   - a replayed trace contributes its file *content* digest, not its path,
//     so renaming a trace file preserves hits and editing one changes them.
//
// The error is non-nil only when a trace file named by the spec cannot be
// read. Fingerprints are stable across processes and platforms; golden
// values are pinned in testdata/fingerprints.golden.
func Fingerprint(spec sweep.RunSpec) ([32]byte, error) {
	c := spec.Canonical()
	if c.TracePath != "" {
		sum, err := fileDigest(c.TracePath)
		if err != nil {
			return [32]byte{}, fmt.Errorf("simstore: fingerprint trace content: %w", err)
		}
		c.TracePath = "sha256:" + hex.EncodeToString(sum)
	}
	h := sha256.New()
	fmt.Fprintf(h, "simstore/%d|%s|", SchemaVersion, SimVersion)
	writeCanonical(h, reflect.ValueOf(c))
	var fp [32]byte
	h.Sum(fp[:0])
	return fp, nil
}

// Hex returns the lower-case hex form of a fingerprint (the form used as a
// store filename and in the HTTP API).
func Hex(fp [32]byte) string { return hex.EncodeToString(fp[:]) }

func fileDigest(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return nil, err
	}
	return h.Sum(nil), nil
}

// writeCanonical streams a deterministic, self-delimiting encoding of v.
// Struct fields are written sorted by name and zero-valued fields are
// skipped, which is what makes the digest independent of field order and of
// whether a default was left unset or spelled out. The supported kinds are
// exactly those reachable from sweep.RunSpec; anything else is a programming
// error caught by the panic (and by the golden fingerprint test the moment
// such a field is added).
func writeCanonical(w io.Writer, v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		names := make([]string, 0, t.NumField())
		byName := make(map[string]reflect.Value, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			fv := v.Field(i)
			if fv.IsZero() {
				continue
			}
			names = append(names, f.Name)
			byName[f.Name] = fv
		}
		sort.Strings(names)
		io.WriteString(w, "{")
		for _, n := range names {
			io.WriteString(w, n)
			io.WriteString(w, "=")
			writeCanonical(w, byName[n])
			io.WriteString(w, ";")
		}
		io.WriteString(w, "}")
	case reflect.Slice, reflect.Array:
		io.WriteString(w, "[")
		for i := 0; i < v.Len(); i++ {
			writeCanonical(w, v.Index(i))
			io.WriteString(w, ",")
		}
		io.WriteString(w, "]")
	case reflect.String:
		io.WriteString(w, strconv.Quote(v.String()))
	case reflect.Bool:
		io.WriteString(w, strconv.FormatBool(v.Bool()))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		io.WriteString(w, strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		io.WriteString(w, strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		io.WriteString(w, strconv.FormatFloat(v.Float(), 'g', -1, 64))
	default:
		panic(fmt.Sprintf("simstore: unsupported kind %s in canonical encoding", v.Kind()))
	}
}
