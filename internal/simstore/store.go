package simstore

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/gpu"
	"repro/internal/sweep"
)

// RecordVersion versions the on-disk record layout. Records with a different
// version are treated as misses (and removed), never misread.
const RecordVersion = 1

// File extensions for the two kinds of content the store holds: JSON result
// records and opaque checkpoint blobs (see internal/checkpoint for the blob
// format). Both live in the same shard directories and share one LRU.
const (
	recordExt = ".json"
	blobExt   = ".ckpt"
)

// Record is the unit the store persists: one run's statistics, addressed by
// the fingerprint of its spec. Spec and Key are informational — they let a
// human (or the simd API) see what a record is without reverse-engineering
// the hash — and are not trusted for lookups.
type Record struct {
	Version     int           `json:"version"`
	Fingerprint string        `json:"fingerprint"`
	Key         string        `json:"key,omitempty"`
	Spec        sweep.RunSpec `json:"spec"`
	Stats       gpu.RunStats  `json:"stats"`
	SavedAtUnix int64         `json:"saved_at_unix"`
}

// Options configures a Store.
type Options struct {
	// MaxEntries bounds the number of entries (records and blobs together)
	// kept on disk; once full, the least-recently-used entry is evicted on
	// insert. 0 means unbounded.
	MaxEntries int
	// MaxBytes bounds the total on-disk size of all entries; the LRU evicts
	// until under the bound. Checkpoint blobs dominate this budget (a record
	// is a few KiB, a blob can be megabytes). 0 means unbounded.
	MaxBytes int64
}

// Stats are the store's observability counters (served by simd's /metrics).
type Stats struct {
	Entries    int
	Blobs      int
	TotalBytes int64
	Hits       uint64
	Misses     uint64
	Puts       uint64
	BlobHits   uint64
	BlobMisses uint64
	BlobPuts   uint64
	Evictions  uint64
	Corrupt    uint64
}

// fileKey identifies one stored file: its fingerprint hex plus which of the
// two namespaces (record or blob) it lives in. Records and blobs use
// different fingerprint salts, but the extension split makes the namespaces
// collision-proof by construction.
type fileKey struct {
	hex  string
	blob bool
}

func (k fileKey) ext() string {
	if k.blob {
		return blobExt
	}
	return recordExt
}

// Store is a content-addressed, on-disk map from fingerprint to content:
// result records (<fingerprint>.json) and checkpoint blobs (<fingerprint>.ckpt),
// both inside a two-hex-character shard directory (aa/aabb...), written
// atomically (temp file + rename) so a crash never leaves a half-written
// entry behind. Reads tolerate corruption: an unparseable, version-skewed or
// mislabeled record counts as a miss and the offending file is removed
// (checkpoint blobs are opaque here; their consumer reports corruption via
// DropBlob). Recency is an in-memory LRU list seeded from file modification
// times at Open and persisted back via mtime bumps on hits, so LRU eviction
// keeps working across daemon restarts. Records and blobs share the LRU and
// both count against MaxEntries and MaxBytes.
//
// A Store is safe for concurrent use.
type Store struct {
	dir      string
	max      int
	maxBytes int64

	mu    sync.Mutex
	index map[fileKey]*list.Element // -> lru element
	lru   *list.List                // front = most recently used; values are fileKeys
	sizes map[fileKey]int64
	bytes int64
	stats Stats
}

// Open creates (if needed) and loads the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simstore: open: %w", err)
	}
	s := &Store{
		dir:      dir,
		max:      opts.MaxEntries,
		maxBytes: opts.MaxBytes,
		index:    make(map[fileKey]*list.Element),
		lru:      list.New(),
		sizes:    make(map[fileKey]int64),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load seeds the LRU index from the entries already on disk, oldest first.
func (s *Store) load() error {
	type onDisk struct {
		key   fileKey
		size  int64
		mtime time.Time
	}
	var found []onDisk
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("simstore: scan: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.dir, shard.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() {
				continue
			}
			// A crash between CreateTemp and the rename in put leaves a
			// .tmp-* file behind; reclaim it (nothing references temp names).
			if strings.HasPrefix(name, ".tmp-") {
				os.Remove(filepath.Join(s.dir, shard.Name(), name))
				continue
			}
			var key fileKey
			switch {
			case strings.HasSuffix(name, recordExt):
				key = fileKey{hex: strings.TrimSuffix(name, recordExt)}
			case strings.HasSuffix(name, blobExt):
				key = fileKey{hex: strings.TrimSuffix(name, blobExt), blob: true}
			default:
				continue
			}
			if len(key.hex) != 64 || !strings.HasPrefix(key.hex, shard.Name()) {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			found = append(found, onDisk{key: key, size: info.Size(), mtime: info.ModTime()})
		}
	}
	// Oldest first, so pushing each to the LRU front leaves the most recent
	// entry at the front. Ties break on the fingerprint for determinism.
	sort.Slice(found, func(i, j int) bool {
		a, b := found[i], found[j]
		if !a.mtime.Equal(b.mtime) {
			return a.mtime.Before(b.mtime)
		}
		if a.key.hex != b.key.hex {
			return a.key.hex < b.key.hex
		}
		return !a.key.blob && b.key.blob
	})
	for _, f := range found {
		s.index[f.key] = s.lru.PushFront(f.key)
		s.sizes[f.key] = f.size
		s.bytes += f.size
	}
	return nil
}

func (s *Store) path(k fileKey) string {
	return filepath.Join(s.dir, k.hex[:2], k.hex+k.ext())
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of indexed entries (records and blobs).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// StoreStats returns a snapshot of the observability counters.
func (s *Store) StoreStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	blobs := 0
	for k := range s.index {
		if k.blob {
			blobs++
		}
	}
	st.Blobs = blobs
	st.TotalBytes = s.bytes
	return st
}

// Get looks up the record for fp. ok=false means a (counted) miss; a
// corrupt or version-skewed record on disk is removed and reported as a
// miss, never as an error. A hit refreshes the record's LRU position and
// mtime.
func (s *Store) Get(fp [32]byte) (Record, bool) {
	key := fileKey{hex: Hex(fp)}
	s.mu.Lock()
	defer s.mu.Unlock()

	elem, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		return Record{}, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		// Index said yes but the file is gone (pruned externally): self-heal.
		s.dropLocked(key, elem, false)
		s.stats.Misses++
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil ||
		rec.Version != RecordVersion || rec.Fingerprint != key.hex {
		s.dropLocked(key, elem, true)
		s.stats.Corrupt++
		s.stats.Misses++
		return Record{}, false
	}
	s.touchLocked(key, elem)
	s.stats.Hits++
	return rec, true
}

// touchLocked refreshes an entry's LRU position and persists the recency as
// an mtime bump (best-effort). Callers hold s.mu.
func (s *Store) touchLocked(key fileKey, elem *list.Element) {
	s.lru.MoveToFront(elem)
	now := time.Now()
	os.Chtimes(s.path(key), now, now)
}

// Put stores stats under fp, evicting least-recently-used entries if the
// store is over its bounds. Putting an already-present fingerprint refreshes
// the record in place.
func (s *Store) Put(fp [32]byte, key string, spec sweep.RunSpec, stats gpu.RunStats) error {
	rec := Record{
		Version:     RecordVersion,
		Fingerprint: Hex(fp),
		Key:         key,
		Spec:        spec.Canonical(),
		Stats:       stats,
		SavedAtUnix: time.Now().Unix(),
	}
	data, err := json.MarshalIndent(rec, "", "\t")
	if err != nil {
		return fmt.Errorf("simstore: put: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.putLocked(fileKey{hex: rec.Fingerprint}, data); err != nil {
		return err
	}
	s.stats.Puts++
	return nil
}

// PutBlob stores an opaque checkpoint blob under fp. The store never
// interprets blob contents; internal/checkpoint owns the format.
func (s *Store) PutBlob(fp [32]byte, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.putLocked(fileKey{hex: Hex(fp), blob: true}, data); err != nil {
		return err
	}
	s.stats.BlobPuts++
	return nil
}

// GetBlob looks up the checkpoint blob for fp; ok=false is a counted miss.
// A hit refreshes the blob's LRU position and mtime. Callers that find the
// returned bytes undecodable must report it via DropBlob so the store can
// self-heal.
func (s *Store) GetBlob(fp [32]byte) ([]byte, bool) {
	key := fileKey{hex: Hex(fp), blob: true}
	s.mu.Lock()
	defer s.mu.Unlock()

	elem, ok := s.index[key]
	if !ok {
		s.stats.BlobMisses++
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.dropLocked(key, elem, false)
		s.stats.BlobMisses++
		return nil, false
	}
	s.touchLocked(key, elem)
	s.stats.BlobHits++
	return data, true
}

// HasBlob reports whether a blob is stored under fp, without touching LRU
// recency or the hit/miss counters.
func (s *Store) HasBlob(fp [32]byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[fileKey{hex: Hex(fp), blob: true}]
	return ok
}

// DropBlob removes the blob stored under fp, counting it as corrupt. It is
// the self-heal path for blobs whose content fails to decode downstream —
// the corrupt file is deleted so the next run falls back to cold execution
// and rewrites it.
func (s *Store) DropBlob(fp [32]byte) {
	key := fileKey{hex: Hex(fp), blob: true}
	s.mu.Lock()
	defer s.mu.Unlock()
	if elem, ok := s.index[key]; ok {
		s.dropLocked(key, elem, true)
		s.stats.Corrupt++
	}
}

// putLocked atomically writes one file and indexes it. Callers hold s.mu.
func (s *Store) putLocked(key fileKey, data []byte) error {
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("simstore: put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("simstore: put: %w", err)
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simstore: put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simstore: put: %w", err)
	}

	if elem, ok := s.index[key]; ok {
		s.lru.MoveToFront(elem)
		s.bytes += int64(len(data)) - s.sizes[key]
	} else {
		s.index[key] = s.lru.PushFront(key)
		s.bytes += int64(len(data))
	}
	s.sizes[key] = int64(len(data))
	s.evictLocked()
	return nil
}

// evictLocked drops least-recently-used entries until both bounds hold.
// Callers hold s.mu.
func (s *Store) evictLocked() {
	for (s.max > 0 && s.lru.Len() > s.max) || (s.maxBytes > 0 && s.bytes > s.maxBytes) {
		oldest := s.lru.Back()
		if oldest == nil {
			return
		}
		s.dropLocked(oldest.Value.(fileKey), oldest, true)
		s.stats.Evictions++
	}
}

// dropLocked removes an entry from the index and, if removeFile is set, from
// disk. Callers hold s.mu.
func (s *Store) dropLocked(key fileKey, elem *list.Element, removeFile bool) {
	s.lru.Remove(elem)
	delete(s.index, key)
	s.bytes -= s.sizes[key]
	delete(s.sizes, key)
	if removeFile {
		os.Remove(s.path(key))
	}
}
