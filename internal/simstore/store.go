package simstore

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/gpu"
	"repro/internal/sweep"
)

// RecordVersion versions the on-disk record layout. Records with a different
// version are treated as misses (and removed), never misread.
const RecordVersion = 1

// Record is the unit the store persists: one run's statistics, addressed by
// the fingerprint of its spec. Spec and Key are informational — they let a
// human (or the simd API) see what a record is without reverse-engineering
// the hash — and are not trusted for lookups.
type Record struct {
	Version     int           `json:"version"`
	Fingerprint string        `json:"fingerprint"`
	Key         string        `json:"key,omitempty"`
	Spec        sweep.RunSpec `json:"spec"`
	Stats       gpu.RunStats  `json:"stats"`
	SavedAtUnix int64         `json:"saved_at_unix"`
}

// Options configures a Store.
type Options struct {
	// MaxEntries bounds the number of records kept on disk; once full, the
	// least-recently-used record is evicted on insert. 0 means unbounded.
	MaxEntries int
}

// Stats are the store's observability counters (served by simd's /metrics).
type Stats struct {
	Entries   int
	Hits      uint64
	Misses    uint64
	Puts      uint64
	Evictions uint64
	Corrupt   uint64
}

// Store is a content-addressed, on-disk map from run fingerprint to result
// record. Records are JSON files named <fingerprint>.json inside a two-hex-
// character shard directory (aa/aabb....json), written atomically
// (temp file + rename) so a crash never leaves a half-written record behind.
// Reads tolerate corruption: an unparseable, version-skewed or mislabeled
// record counts as a miss and the offending file is removed. Recency is an
// in-memory LRU list seeded from file modification times at Open and
// persisted back via mtime bumps on hits, so LRU eviction keeps working
// across daemon restarts.
//
// A Store is safe for concurrent use.
type Store struct {
	dir string
	max int

	mu    sync.Mutex
	index map[string]*list.Element // fingerprint hex -> lru element
	lru   *list.List               // front = most recently used; values are hex strings
	stats Stats
}

// Open creates (if needed) and loads the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simstore: open: %w", err)
	}
	s := &Store{
		dir:   dir,
		max:   opts.MaxEntries,
		index: make(map[string]*list.Element),
		lru:   list.New(),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load seeds the LRU index from the records already on disk, oldest first.
func (s *Store) load() error {
	type onDisk struct {
		hexFP string
		mtime time.Time
	}
	var found []onDisk
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("simstore: scan: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.dir, shard.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() {
				continue
			}
			// A crash between CreateTemp and the rename in Put leaves a
			// .tmp-* file behind; reclaim it (nothing references temp names).
			if strings.HasPrefix(name, ".tmp-") {
				os.Remove(filepath.Join(s.dir, shard.Name(), name))
				continue
			}
			if !strings.HasSuffix(name, ".json") {
				continue
			}
			hexFP := strings.TrimSuffix(name, ".json")
			if len(hexFP) != 64 || !strings.HasPrefix(hexFP, shard.Name()) {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			found = append(found, onDisk{hexFP: hexFP, mtime: info.ModTime()})
		}
	}
	// Oldest first, so pushing each to the LRU front leaves the most recent
	// record at the front. Ties break on the fingerprint for determinism.
	sort.Slice(found, func(i, j int) bool {
		a, b := found[i], found[j]
		if !a.mtime.Equal(b.mtime) {
			return a.mtime.Before(b.mtime)
		}
		return a.hexFP < b.hexFP
	})
	for _, f := range found {
		s.index[f.hexFP] = s.lru.PushFront(f.hexFP)
	}
	return nil
}

func (s *Store) path(hexFP string) string {
	return filepath.Join(s.dir, hexFP[:2], hexFP+".json")
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of indexed records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// StoreStats returns a snapshot of the observability counters.
func (s *Store) StoreStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	return st
}

// Get looks up the record for fp. ok=false means a (counted) miss; a
// corrupt or version-skewed record on disk is removed and reported as a
// miss, never as an error. A hit refreshes the record's LRU position and
// mtime.
func (s *Store) Get(fp [32]byte) (Record, bool) {
	hexFP := Hex(fp)
	s.mu.Lock()
	defer s.mu.Unlock()

	elem, ok := s.index[hexFP]
	if !ok {
		s.stats.Misses++
		return Record{}, false
	}
	data, err := os.ReadFile(s.path(hexFP))
	if err != nil {
		// Index said yes but the file is gone (pruned externally): self-heal.
		s.dropLocked(hexFP, elem, false)
		s.stats.Misses++
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil ||
		rec.Version != RecordVersion || rec.Fingerprint != hexFP {
		s.dropLocked(hexFP, elem, true)
		s.stats.Corrupt++
		s.stats.Misses++
		return Record{}, false
	}
	s.lru.MoveToFront(elem)
	now := time.Now()
	os.Chtimes(s.path(hexFP), now, now) // persist recency; best-effort
	s.stats.Hits++
	return rec, true
}

// Put stores stats under fp, evicting least-recently-used records if the
// store is over its bound. Putting an already-present fingerprint refreshes
// the record in place.
func (s *Store) Put(fp [32]byte, key string, spec sweep.RunSpec, stats gpu.RunStats) error {
	hexFP := Hex(fp)
	rec := Record{
		Version:     RecordVersion,
		Fingerprint: hexFP,
		Key:         key,
		Spec:        spec.Canonical(),
		Stats:       stats,
		SavedAtUnix: time.Now().Unix(),
	}
	data, err := json.MarshalIndent(rec, "", "\t")
	if err != nil {
		return fmt.Errorf("simstore: put: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	path := s.path(hexFP)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("simstore: put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("simstore: put: %w", err)
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simstore: put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simstore: put: %w", err)
	}

	if elem, ok := s.index[hexFP]; ok {
		s.lru.MoveToFront(elem)
	} else {
		s.index[hexFP] = s.lru.PushFront(hexFP)
	}
	s.stats.Puts++
	for s.max > 0 && s.lru.Len() > s.max {
		oldest := s.lru.Back()
		s.dropLocked(oldest.Value.(string), oldest, true)
		s.stats.Evictions++
	}
	return nil
}

// dropLocked removes a record from the index and, if removeFile is set, from
// disk. Callers hold s.mu.
func (s *Store) dropLocked(hexFP string, elem *list.Element, removeFile bool) {
	s.lru.Remove(elem)
	delete(s.index, hexFP)
	if removeFile {
		os.Remove(s.path(hexFP))
	}
}
