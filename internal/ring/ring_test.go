package ring

import "testing"

func TestFIFOOrder(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 100; i++ {
		d.PushBack(i)
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	for i := 0; i < 100; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", d.Len())
	}
}

func TestWraparound(t *testing.T) {
	var d Deque[int]
	// Interleave pushes and pops so head circles the buffer many times
	// without triggering growth past the minimum capacity.
	next, expect := 0, 0
	for i := 0; i < 1000; i++ {
		d.PushBack(next)
		next++
		d.PushBack(next)
		next++
		if got := d.PopFront(); got != expect {
			t.Fatalf("iter %d: PopFront = %d, want %d", i, got, expect)
		}
		expect++
	}
	if d.Cap() > 2048 {
		t.Fatalf("capacity %d grew unreasonably for max depth %d", d.Cap(), d.Len())
	}
	for d.Len() > 0 {
		if got := d.PopFront(); got != expect {
			t.Fatalf("drain: PopFront = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d elements, pushed %d", expect, next)
	}
}

func TestGrowPreservesOrder(t *testing.T) {
	var d Deque[int]
	// Offset the head so growth has to un-wrap a wrapped buffer.
	for i := 0; i < 6; i++ {
		d.PushBack(i)
	}
	for i := 0; i < 6; i++ {
		d.PopFront()
	}
	for i := 0; i < 200; i++ { // forces several doublings
		d.PushBack(i)
	}
	for i := 0; i < 200; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
}

func TestPushFront(t *testing.T) {
	var d Deque[string]
	d.PushBack("b")
	d.PushBack("c")
	d.PushFront("a") // the unpop/retry pattern
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if got := d.At(i); got != w {
			t.Fatalf("At(%d) = %q, want %q", i, got, w)
		}
	}
	for _, w := range want {
		if got := d.PopFront(); got != w {
			t.Fatalf("PopFront = %q, want %q", got, w)
		}
	}
}

func TestFrontAndAt(t *testing.T) {
	var d Deque[int]
	d.PushBack(7)
	d.PushBack(8)
	if d.Front() != 7 {
		t.Fatalf("Front = %d, want 7", d.Front())
	}
	if d.At(1) != 8 {
		t.Fatalf("At(1) = %d, want 8", d.At(1))
	}
	if d.Front() != 7 || d.Len() != 2 {
		t.Fatal("Front/At must not consume elements")
	}
}

func TestClear(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 20; i++ {
		d.PushBack(i)
	}
	capBefore := d.Cap()
	d.Clear()
	if d.Len() != 0 {
		t.Fatalf("Len = %d after Clear, want 0", d.Len())
	}
	if d.Cap() != capBefore {
		t.Fatalf("Clear must keep the buffer (cap %d -> %d)", capBefore, d.Cap())
	}
	d.PushBack(42)
	if d.PopFront() != 42 {
		t.Fatal("deque unusable after Clear")
	}
}

func TestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PopFront on empty deque must panic")
		}
	}()
	var d Deque[int]
	d.PopFront()
}

func TestSteadyStateNoAlloc(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 16; i++ {
		d.PushBack(i)
	}
	for d.Len() > 0 {
		d.PopFront()
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			d.PushBack(i)
		}
		for d.Len() > 0 {
			d.PopFront()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f times per run, want 0", avg)
	}
}
