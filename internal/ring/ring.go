// Package ring provides a growable ring-buffer deque used for every queue on
// the simulator's per-cycle hot path (SM output queues, LLC input/output
// queues, NoC port buffers).
//
// All operations are O(1) amortized: the head-pop and head-unpop (retry)
// patterns that previously cost O(n) per operation on slice-backed queues
// become index arithmetic. The buffer only ever grows (by doubling), so a
// deque that has reached its steady-state depth performs zero allocations.
// Capacity is kept a power of two so that index wrapping is a mask, not a
// division.
package ring

const minCap = 8

// Deque is a double-ended queue over a growable ring buffer. The zero value
// is an empty deque ready for use. Deques are not safe for concurrent use.
type Deque[T any] struct {
	buf  []T // len(buf) is always 0 or a power of two
	head int // index of the front element
	n    int // number of elements
}

// Len returns the number of elements in the deque.
func (d *Deque[T]) Len() int { return d.n }

// Cap returns the current capacity of the backing buffer.
func (d *Deque[T]) Cap() int { return len(d.buf) }

// PushBack appends v at the tail.
func (d *Deque[T]) PushBack(v T) {
	d.grow()
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = v
	d.n++
}

// PushFront inserts v at the head (the retry/unpop operation).
func (d *Deque[T]) PushFront(v T) {
	d.grow()
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = v
	d.n++
}

// PopFront removes and returns the head element. It panics on an empty deque.
func (d *Deque[T]) PopFront() T {
	if d.n == 0 {
		panic("ring: PopFront on empty deque")
	}
	v := d.buf[d.head]
	var zero T
	d.buf[d.head] = zero // release references for GC
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return v
}

// Front returns the head element without removing it. It panics on an empty
// deque.
func (d *Deque[T]) Front() T {
	if d.n == 0 {
		panic("ring: Front on empty deque")
	}
	return d.buf[d.head]
}

// At returns the i-th element from the front (0 = head) without removing it.
func (d *Deque[T]) At(i int) T {
	if i < 0 || i >= d.n {
		panic("ring: index out of range")
	}
	return d.buf[(d.head+i)&(len(d.buf)-1)]
}

// Clear removes all elements, releasing references but keeping the buffer.
func (d *Deque[T]) Clear() {
	var zero T
	for i := 0; i < d.n; i++ {
		d.buf[(d.head+i)&(len(d.buf)-1)] = zero
	}
	d.head, d.n = 0, 0
}

// grow doubles the buffer when full, copying elements into front-to-back
// order starting at index 0.
func (d *Deque[T]) grow() {
	if d.n < len(d.buf) {
		return
	}
	newCap := len(d.buf) * 2
	if newCap < minCap {
		newCap = minCap
	}
	buf := make([]T, newCap)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf = buf
	d.head = 0
}
